package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nodeterminismScope lists the packages whose results must be reproducible
// from a seed: the simulators, the measurement core, the measurement
// strategies built on it, topology generation, the pool model the simulator
// drives, the worker pool that runs independent simulations concurrently,
// the topology tracker (whose probe schedule must replay identically from a
// checkpoint), and the observability layer (whose event-log snapshots and
// cost ledgers must byte-compare equal across same-seed runs at any
// parallelism — timestamps come from injected virtual clocks, never the
// wall).
var nodeterminismScope = []string{
	modulePrefix + "/internal/sim",
	modulePrefix + "/internal/ethsim",
	modulePrefix + "/internal/core",
	modulePrefix + "/internal/strategy",
	modulePrefix + "/internal/netgen",
	modulePrefix + "/internal/txpool",
	modulePrefix + "/internal/runner",
	modulePrefix + "/internal/tracker",
	modulePrefix + "/internal/obs",
}

// timeBanned are time-package functions that read the wall clock or real
// timers. Simulation code must take time from the engine's virtual clock.
var timeBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Sleep": true,
}

// randAllowed are math/rand package-level functions that construct seeded
// sources rather than drawing from the global (racily seeded) source.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// heapBanScope are the hot-path packages where container/heap is banned in
// non-test code: event scheduling and message delivery run on the engine's
// specialized index heap (DESIGN.md §8), and container/heap's interface
// boxing reintroduces the per-event allocations the hot-path overhaul
// removed. Test files may still use it — the queue fuzzer pins pop order
// against a container/heap reference.
var heapBanScope = []string{
	modulePrefix + "/internal/sim",
	modulePrefix + "/internal/ethsim",
}

// deliveryPathFuncs names the ethsim functions on the per-message delivery
// path, where any map iteration is banned outright — not merely the
// order-leaking writes mapOrderFindings catches. The hot path iterates only
// slices held in deterministic order (peersSorted, lockQ, outQ, pooled
// buffers). pruneDeliveryHorizon and Edges legitimately range over maps and
// are deliberately not listed.
var deliveryPathFuncs = map[string]bool{
	"flush":              true,
	"deliverTxs":         true,
	"deliverAnnounce":    true,
	"deliverRequest":     true,
	"propagate":          true,
	"sweepAnnounceLocks": true,
	"HandleEvent":        true,
	"handleMsg":          true,
	"route":              true,
	"TickPools":          true,
	// SoA accessors (DESIGN.md §12): per-message adjacency-arena lookups.
	"peersSeg":           true,
	"marksSeg":           true,
	"peerPos":            true,
	"appendPropagatable": true,
}

// tickPathScope are the packages owning the O(Δ) incremental tick path:
// graph.Dynamic's apply/maintenance helpers and the tracker's planner. The
// named tickPathFuncs run once per tracked change on every tracker tick, so
// they carry the same map-iteration and allocation bans as the engine's
// delivery path (DESIGN.md §13).
var tickPathScope = []string{
	modulePrefix + "/internal/graph",
	modulePrefix + "/internal/tracker",
}

// tickPathFuncs names the graph.Dynamic and tracker methods on the per-tick
// incremental path. dynRebuild is deliberately not listed: it is the
// O(V+E) fallback taken only when an edge removal disconnects a component,
// and it trades allocations for not running on the steady-state path.
var tickPathFuncs = map[string]bool{
	// graph.Dynamic maintenance.
	"dynAdjPos": true, "dynAdjInsert": true, "dynAdjRemove": true,
	"dynNbrDegSum": true, "dynCommonAdjust": true, "dynDegShift": true,
	"dynApplyAdd": true, "dynApplyRemove": true,
	"dynFind": true, "dynUnion": true, "dynReach": true,
	// tracker planning and verdict application.
	"trkPlan": true, "trkMarkUrgent": true, "trkApply": true,
}

var analyzerNoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "simulation packages must be seed-reproducible: no wall clock, no global math/rand, no map-iteration-order-dependent results, no container/heap or map iteration on the scheduling/delivery hot path",
	Run:  runNoDeterminism,
}

func runNoDeterminism(pkg *Package) []Finding {
	var findings []Finding
	findings = append(findings, tickPathFindings(pkg)...)
	if !pathIn(pkg.ScopePath(), nodeterminismScope...) {
		return findings
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg.Info, call)
			switch objectPkgPath(obj) {
			case "time":
				if timeBanned[obj.Name()] {
					findings = append(findings, report(pkg, call, "nodeterminism",
						"call to time."+obj.Name()+" in a simulation package; take time from the engine's virtual clock"))
				}
			case "math/rand", "math/rand/v2":
				// Methods on *rand.Rand carry a receiver and are fine; only
				// package-level draws hit the shared global source.
				if fn, isFn := obj.(*types.Func); isFn {
					if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() == nil && !randAllowed[obj.Name()] {
						findings = append(findings, report(pkg, call, "nodeterminism",
							"global math/rand."+obj.Name()+" in a simulation package; use a seeded rand.New(rand.NewSource(...))"))
					}
				}
			}
			return true
		})
	}
	findings = append(findings, mapOrderFindings(pkg)...)
	findings = append(findings, hotPathFindings(pkg)...)
	return findings
}

// hotPathFindings enforces the hot-path rules in heapBanScope packages:
// no container/heap anywhere, and no map iteration inside internal/sim
// (the whole package is scheduler hot path) or inside the named ethsim
// delivery-path functions. Test files are exempt — test code never runs on
// the hot path, and the queue fuzzer deliberately pins pop order against a
// container/heap reference.
func hotPathFindings(pkg *Package) []Finding {
	if !pathIn(pkg.ScopePath(), heapBanScope...) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file) {
			continue
		}
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "container/heap" {
				findings = append(findings, report(pkg, imp, "nodeterminism",
					"container/heap in a hot-path package; use the engine's specialized index heap (DESIGN.md §8)"))
			}
		}
	}
	wholePackage := pathIn(pkg.ScopePath(), modulePrefix+"/internal/sim")
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !wholePackage && !deliveryPathFuncs[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					findings = append(findings, report(pkg, rng, "nodeterminism",
						"map iteration in hot-path function "+fn.Name.Name+"; scheduling/delivery code iterates slices in deterministic order"))
				}
				return true
			})
		}
	}
	return findings
}

// tickPathFindings enforces the map-iteration ban inside the named O(Δ)
// tick-path functions of the graph and tracker packages. Unlike
// mapOrderFindings — which only flags order-dependent writes — any map range
// here is banned outright: the incremental maintenance path iterates sorted
// adjacency slices and staleness buckets, and a map walk both leaks iteration
// order into the belief schedule and defeats the O(Δ) bound. Test files are
// exempt; batch/fallback helpers (dynRebuild, Snapshot) are deliberately
// outside tickPathFuncs.
func tickPathFindings(pkg *Package) []Finding {
	if !pathIn(pkg.ScopePath(), tickPathScope...) {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !tickPathFuncs[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					findings = append(findings, report(pkg, rng, "nodeterminism",
						"map iteration in tick-path function "+fn.Name.Name+"; O(Δ) maintenance iterates adjacency slices and staleness buckets in deterministic order (DESIGN.md §13)"))
				}
				return true
			})
		}
	}
	return findings
}

// mapOrderFindings flags loops whose results depend on map iteration order:
// within a `for ... range m` over a map, (a) appending to a slice declared
// outside the loop that is never handed to the sort package in the enclosing
// function, and (b) accumulating floating-point sums (addition over map order
// is not associative in floating point).
func mapOrderFindings(pkg *Package) []Finding {
	var findings []Finding
	forEachFunc(pkg, func(body *ast.BlockStmt) {
		sorted := sortedObjects(pkg.Info, body)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // visited standalone by forEachFunc
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			findings = append(findings, checkMapRangeBody(pkg, rng, sorted)...)
			return true
		})
	})
	return findings
}

// forEachFunc visits every function body in the package: declarations and
// function literals, each exactly once (literals are visited standalone, so
// callers must not descend into them again).
func forEachFunc(pkg *Package, visit func(body *ast.BlockStmt)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Body)
				}
			case *ast.FuncLit:
				visit(fn.Body)
			}
			return true
		})
	}
}

// sortedObjects collects the variables that appear in arguments to any
// sort-package call within the function body. A slice built in map order but
// sorted before use is deterministic, so appends into these are not flagged.
func sortedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(info, call)
		if objectPkgPath(obj) != "sort" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, isID := a.(*ast.Ident); isID {
					if v, isVar := info.Uses[id].(*types.Var); isVar {
						out[v] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// checkMapRangeBody scans one map-range body for order-dependent writes.
func checkMapRangeBody(pkg *Package, rng *ast.RangeStmt, sorted map[types.Object]bool) []Finding {
	var findings []Finding
	info := pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // analyzed as its own function
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Float accumulation: sum += v or sum = sum + v with a float type.
		if asg.Tok == token.ADD_ASSIGN && len(asg.Lhs) == 1 {
			if tv, tok := info.Types[asg.Lhs[0]]; tok && isFloat(tv.Type) {
				findings = append(findings, report(pkg, asg, "nodeterminism",
					"floating-point accumulation over map iteration order; iterate a sorted copy of the keys"))
				return true
			}
		}
		// append into a variable that is never sorted afterwards.
		for i, rhs := range asg.Rhs {
			if len(asg.Lhs) != len(asg.Rhs) {
				break
			}
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if !isCall {
				continue
			}
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); !isID || info.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			id, isID := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
			if !isID {
				continue
			}
			v, isVar := info.Uses[id].(*types.Var)
			if !isVar && info.Defs[id] != nil {
				v, isVar = info.Defs[id].(*types.Var)
			}
			if !isVar || sorted[v] || declaredWithin(info, v, rng.Body) {
				continue
			}
			findings = append(findings, report(pkg, asg, "nodeterminism",
				"append to "+id.Name+" in map iteration order without a subsequent sort; sort the keys or the result"))
		}
		return true
	})
	return findings
}

// declaredWithin reports whether v's declaration position falls inside the
// given block — a loop-local slice reset each iteration carries no cross-
// iteration order dependence.
func declaredWithin(info *types.Info, v *types.Var, block *ast.BlockStmt) bool {
	return v.Pos() >= block.Pos() && v.Pos() <= block.End()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
