// Whole-module analysis: Program loads and type-checks every requested
// package once, then the driver fans per-package analyzers out across
// internal/runner's worker pool (byte-identical to a serial run — findings
// land in per-package slots and are merged in package order) and runs the
// interprocedural analyzers over the shared call graph. See DESIGN.md §11.

package lint

import (
	"sync"

	"toposhot/internal/runner"
)

// Program is a whole module loaded and type-checked once: every requested
// package (plus, transitively, everything they import inside the module),
// sharing one FileSet so positions — and therefore findings and golden files
// — are globally consistent. Interprocedural analyzers receive the Program;
// per-package analyzers receive one Package at a time.
type Program struct {
	ModRoot  string
	ModPath  string
	Packages []*Package // sorted by Path; external test packages follow their subject

	cgOnce sync.Once
	cg     *CallGraph
}

// NewProgram wraps already-loaded packages (fixture tests build single-
// package programs this way). Packages must share a FileSet.
func NewProgram(pkgs ...*Package) *Program {
	p := &Program{Packages: pkgs}
	if len(pkgs) > 0 {
		p.ModRoot = pkgs[0].ModRoot
	}
	return p
}

// Package returns the loaded package with the given path, or nil.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Packages {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// CallGraph returns the program's static call graph, built once on first
// use (construction walks every function body and resolves interface calls
// to concrete module methods, so only analyzers that need it pay for it).
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = BuildCallGraph(p) })
	return p.cg
}

// LoadProgram expands the patterns and loads every matched package — and,
// when test linting is on, each one's external test package — into one
// Program. A package that cannot be loaded at all (unreadable directory, no
// Go files) is an environment error; packages that merely fail to type-check
// load fine and degrade to typecheck findings.
func LoadProgram(opts Options) (*Program, error) {
	ld, err := newLoader(opts.Dir, !opts.NoTests)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{ModRoot: ld.modRoot, ModPath: ld.modPath}
	for _, path := range paths {
		pkg, err := ld.loadModulePackage(path)
		if err != nil {
			return nil, wrapLoadErr(path, err)
		}
		prog.Packages = append(prog.Packages, pkg)
		ext, err := ld.loadExternalTest(path)
		if err != nil {
			return nil, wrapLoadErr(path, err)
		}
		if ext != nil {
			prog.Packages = append(prog.Packages, ext)
		}
	}
	return prog, nil
}

// CheckProgram applies the selected analyzers to every package of the
// program: type errors become typecheck findings, per-package analyzers fan
// out over the worker pool, interprocedural analyzers run over the whole
// program, suppressions are honored module-wide, and ignore directives that
// suppressed nothing are themselves reported. parallel ≤ 0 means the
// process-default pool width; any width produces byte-identical output.
func CheckProgram(prog *Program, analyzers []*Analyzer, parallel int) []Finding {
	// Ignore directives are collected up front, single-threaded, so the
	// suppression table (and its malformed-directive findings) is identical
	// no matter how the analysis fans out.
	table := newIgnoreTable()
	var findings []Finding
	for _, pkg := range prog.Packages {
		findings = append(findings, table.collect(pkg)...)
	}

	// Per-package analyzers: each package writes findings into its own slot,
	// so merge order is package order regardless of completion order.
	perPkg := runner.MapN(parallel, len(prog.Packages), func(i int) []Finding {
		pkg := prog.Packages[i]
		var fs []Finding
		for _, te := range pkg.TypeErrors {
			fs = append(fs, Finding{
				Pos:  relPosition(pkg, te.Pos),
				Rule: TypecheckRule,
				Msg:  te.Msg,
			})
		}
		for _, a := range analyzers {
			if a.Run != nil {
				fs = append(fs, a.Run(pkg)...)
			}
		}
		return fs
	})
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}

	// Interprocedural analyzers see the whole program at once. The call
	// graph is built before the fan-out so the lazily-built shared structure
	// is not constructed concurrently.
	var progAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			progAnalyzers = append(progAnalyzers, a)
		}
	}
	if len(progAnalyzers) > 0 {
		prog.CallGraph()
		perAnalyzer := runner.MapN(parallel, len(progAnalyzers), func(i int) []Finding {
			return progAnalyzers[i].RunProgram(prog)
		})
		for _, fs := range perAnalyzer {
			findings = append(findings, fs...)
		}
	}

	// Suppression and stale-directive audit run after the merge, serially:
	// matching marks directives used, and a directive left unused by the
	// full set of rules it names has outlived the code it excused.
	kept := findings[:0]
	for _, f := range findings {
		if f.Rule != TypecheckRule && table.matches(f) {
			continue
		}
		kept = append(kept, f)
	}
	findings = append(kept, table.stale(analyzers)...)
	sortFindings(findings)
	return findings
}

func wrapLoadErr(path string, err error) error {
	return &loadError{path: path, err: err}
}

// loadError wraps a package-level load failure with its import path.
type loadError struct {
	path string
	err  error
}

func (e *loadError) Error() string { return "load " + e.path + ": " + e.err.Error() }
func (e *loadError) Unwrap() error { return e.err }
