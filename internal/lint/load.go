package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package handed to analyzers.
type Package struct {
	// Path is the package's import path (e.g. "toposhot/internal/node").
	Path string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed (non-test) source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types and object resolution for the files.
	Info *types.Info
	// TypeErrors collects type-check diagnostics. A non-empty list means
	// Info may be partial; analyzers must tolerate missing entries.
	TypeErrors []types.Error
}

// loader resolves and type-checks module packages, delegating everything
// outside the module to a go/importer "source" importer so the suite works
// with nothing but a GOROOT source tree.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

func newLoader(dir string) (*loader, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, err := findModuleRoot(abs)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// Stdlib packages are type-checked from GOROOT source; disabling cgo
	// selects the pure-Go variants (net's DNS resolver and friends), which
	// is all type analysis needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModuleRoot walks upward from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// expand resolves package patterns ("./...", "./dir/...", "./dir") to a
// sorted list of module import paths.
func (l *loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = "."
		}
		root := filepath.Join(l.modRoot, filepath.FromSlash(pat))
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("no Go files in %s", root)
			}
			add(l.importPathFor(root))
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(l.importPathFor(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// hasGoFiles reports whether dir holds at least one non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if sourceFile(e) {
			return true
		}
	}
	return false
}

func sourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// Import implements types.Importer: module-internal paths load from source
// through this loader; everything else (the standard library) goes through
// the source importer. The "unsafe" pseudo-package is special-cased.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadModulePackage parses and type-checks one module package (memoized).
func (l *loader) loadModulePackage(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	p, err := l.checkDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// checkDir parses every non-test Go file in dir and type-checks the result
// under the given import path. Parse and type errors do not abort: they are
// recorded on the package for reporting, and analysis proceeds on whatever
// information survived.
func (l *loader) checkDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Fset: l.fset}
	var names []string
	for _, e := range entries {
		if sourceFile(e) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	displayDir := dir
	if rel, rerr := filepath.Rel(l.modRoot, dir); rerr == nil {
		displayDir = rel
	}
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(l.fset, filepath.ToSlash(filepath.Join(displayDir, name)), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// Report the parse failure as a type error and analyze the rest.
			pkg.TypeErrors = append(pkg.TypeErrors, types.Error{
				Fset: l.fset,
				Msg:  err.Error(),
			})
			if file == nil {
				continue
			}
		}
		pkg.Files = append(pkg.Files, file)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				pkg.TypeErrors = append(pkg.TypeErrors, te)
			}
		},
	}
	// Check records its result even when errors occurred; the error return
	// duplicates the first collected diagnostic, so it is deliberately
	// dropped here — TypeErrors carries the full list.
	tpkg, _ := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// LoadPackage parses and type-checks the single package in dir under the
// claimed import path. It is the entry point tests use to load fixture
// packages from testdata (which the normal pattern walk skips). The claimed
// path controls path-scoped rules, so a fixture can opt into, say, the
// simulation-package determinism checks.
func LoadPackage(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ld, err := newLoader(abs)
	if err != nil {
		return nil, err
	}
	return ld.checkDir(abs, importPath)
}
