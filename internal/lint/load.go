package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package handed to analyzers.
type Package struct {
	// Path is the package's import path (e.g. "toposhot/internal/node").
	// External test packages ("package foo_test") carry the synthetic path
	// "<path> [test]"; rule scoping uses ScopePath, which strips the marker.
	Path string
	// ForTest, when non-empty, marks an external test package and names the
	// import path of the package under test.
	ForTest string
	// ModRoot is the absolute module root directory the package was loaded
	// from. Finding positions resolve against it, never against the process
	// working directory, so reports and golden files are byte-identical no
	// matter which subdirectory the linter is invoked from.
	ModRoot string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed source files, sorted by file name. Test files are
	// included unless the load opted out (Options.NoTests); IsTestFile tells
	// them apart.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types and object resolution for the files.
	Info *types.Info
	// TypeErrors collects type-check diagnostics. A non-empty list means
	// Info may be partial; analyzers must tolerate missing entries.
	TypeErrors []types.Error
}

// ScopePath is the import path rules scope on: for an external test package
// it is the path of the package under test, so path-scoped rules (hot-path
// bans, determinism scope) apply to a package's external tests too.
func (p *Package) ScopePath() string {
	if p.ForTest != "" {
		return p.ForTest
	}
	return p.Path
}

// IsTestFile reports whether the file is a _test.go source.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// IsTestPos reports whether the position falls in a _test.go source.
func (p *Package) IsTestPos(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// loader resolves and type-checks module packages, delegating everything
// outside the module to a go/importer "source" importer so the suite works
// with nothing but a GOROOT source tree.
type loader struct {
	fset    *token.FileSet
	baseDir string // absolute directory patterns resolve against
	modRoot string
	modPath string
	tests   bool // parse _test.go files too
	pkgs    map[string]*Package
	extPkgs map[string]*Package // external test package by subject path
	loading map[string]bool
	std     types.Importer
}

func newLoader(dir string, tests bool) (*loader, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, err := findModuleRoot(abs)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// Stdlib packages are type-checked from GOROOT source; disabling cgo
	// selects the pure-Go variants (net's DNS resolver and friends), which
	// is all type analysis needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		baseDir: abs,
		modRoot: modRoot,
		modPath: modPath,
		tests:   tests,
		pkgs:    make(map[string]*Package),
		extPkgs: make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModuleRoot walks upward from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// expand resolves package patterns ("./...", "./dir/...", "./dir") to a
// sorted list of module import paths. Patterns resolve against the loader's
// base directory (where the linter was invoked), matching the go tool's
// convention, while reported paths stay module-root-relative.
func (l *loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = "."
		}
		root := filepath.Join(l.baseDir, filepath.FromSlash(pat))
		if !recursive {
			if !hasGoFiles(root, l.tests) {
				return nil, fmt.Errorf("no Go files in %s", root)
			}
			add(l.importPathFor(root))
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path, l.tests) {
				add(l.importPathFor(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// hasGoFiles reports whether dir holds at least one candidate Go file.
func hasGoFiles(dir string, tests bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if sourceFile(e, tests) {
			return true
		}
	}
	return false
}

// sourceFile reports whether the entry is a lintable Go file. With tests
// false, _test.go files are excluded (the -no-tests opt-out).
func sourceFile(e os.DirEntry, tests bool) bool {
	name := e.Name()
	if e.IsDir() || !strings.HasSuffix(name, ".go") ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return false
	}
	if !tests && strings.HasSuffix(name, "_test.go") {
		return false
	}
	return true
}

// Import implements types.Importer: module-internal paths load from source
// through this loader; everything else (the standard library) goes through
// the source importer. The "unsafe" pseudo-package is special-cased.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadModulePackage parses and type-checks one module package (memoized).
// Note: a package loaded as a dependency of another package includes its
// in-package test files when the loader lints tests — harmless extra symbols
// for the importer, and it keeps every package type-checked exactly once.
func (l *loader) loadModulePackage(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	p, ext, err := l.checkDir(dir, path)
	if err != nil {
		return nil, err
	}
	// Memoize the base package before type-checking its external tests: the
	// test files import it, and the importer must find this result rather
	// than tripping the in-progress cycle guard.
	l.pkgs[path] = p
	if ext != nil {
		l.typecheck(ext, path+"_test")
		l.extPkgs[path] = ext
	}
	return p, nil
}

// loadExternalTest returns the external test package ("package foo_test") of
// a module package, loading the subject first so the test files' import of it
// resolves to the memoized result. Nil when the directory has none.
func (l *loader) loadExternalTest(path string) (*Package, error) {
	if !l.tests {
		return nil, nil
	}
	if _, err := l.loadModulePackage(path); err != nil {
		return nil, err
	}
	return l.extPkgs[path], nil
}

// parseDir parses the candidate files of dir, splitting them into the base
// package's files and external-test ("package foo_test") files.
func (l *loader) parseDir(dir string, pkg *Package) (base, external []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if sourceFile(e, l.tests) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	displayDir := dir
	if rel, rerr := filepath.Rel(l.modRoot, dir); rerr == nil && !strings.HasPrefix(rel, "..") {
		displayDir = rel
	}
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		file, err := parser.ParseFile(l.fset, filepath.ToSlash(filepath.Join(displayDir, name)), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// Report the parse failure as a type error and analyze the rest.
			pkg.TypeErrors = append(pkg.TypeErrors, types.Error{
				Fset: l.fset,
				Msg:  err.Error(),
			})
			if file == nil {
				continue
			}
		}
		if strings.HasSuffix(name, "_test.go") && file.Name != nil && strings.HasSuffix(file.Name.Name, "_test") {
			external = append(external, file)
			continue
		}
		base = append(base, file)
	}
	return base, external, nil
}

// checkDir parses every candidate Go file in dir and type-checks the base
// package under the given import path. In-package test files join the base
// package; "package foo_test" files come back as a second, parsed but NOT
// yet type-checked external test package — the caller must memoize the base
// first (its tests import it) and then run typecheck on the external one.
// Parse and type errors do not abort: they are recorded on the package for
// reporting, and analysis proceeds on whatever information survived.
func (l *loader) checkDir(dir, path string) (base, externalTest *Package, err error) {
	pkg := &Package{Path: path, Fset: l.fset, ModRoot: l.modRoot}
	baseFiles, extFiles, err := l.parseDir(dir, pkg)
	if err != nil {
		return nil, nil, err
	}
	pkg.Files = baseFiles
	l.typecheck(pkg, path)

	if len(extFiles) == 0 {
		return pkg, nil, nil
	}
	ext := &Package{Path: path + " [test]", ForTest: path, Fset: l.fset, ModRoot: l.modRoot}
	ext.Files = extFiles
	return pkg, ext, nil
}

// typecheck runs go/types over the package's files in place.
func (l *loader) typecheck(pkg *Package, checkPath string) {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				pkg.TypeErrors = append(pkg.TypeErrors, te)
			}
		},
	}
	// Check records its result even when errors occurred; the error return
	// duplicates the first collected diagnostic, so it is deliberately
	// dropped here — TypeErrors carries the full list.
	tpkg, _ := conf.Check(checkPath, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
}

// LoadPackage parses and type-checks the single package in dir under the
// claimed import path, test files included. It is the entry point tests use
// to load fixture packages from testdata (which the normal pattern walk
// skips). The claimed path controls path-scoped rules, so a fixture can opt
// into, say, the simulation-package determinism checks. The second result is
// the directory's external test package, or nil.
func LoadPackage(dir, importPath string) (*Package, *Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	ld, err := newLoader(abs, true)
	if err != nil {
		return nil, nil, err
	}
	base, ext, err := ld.checkDir(abs, importPath)
	if err != nil {
		return nil, nil, err
	}
	if ext != nil {
		ld.pkgs[importPath] = base
		ld.typecheck(ext, importPath+"_test")
	}
	return base, ext, nil
}
