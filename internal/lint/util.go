package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// modulePrefix is the import-path prefix of this module; analyzers use it to
// scope rules to project packages.
const modulePrefix = "toposhot"

// report constructs a finding at the given node.
func report(pkg *Package, node ast.Node, rule, msg string) Finding {
	return Finding{Pos: relPosition(pkg, node.Pos()), Rule: rule, Msg: msg}
}

// pathIn reports whether pkgPath is one of the listed package paths or a
// subpackage of one.
func pathIn(pkgPath string, roots ...string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call expression invokes: the function,
// method, or variable named by the call's Fun, unwrapping parentheses. It
// returns nil for indirect expressions (call results, index expressions) and
// for type conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil // type conversion, not a call
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Obj()
		}
		// Package-qualified call (pkg.Fn): no Selection entry, the Sel ident
		// resolves directly.
		return info.Uses[f.Sel]
	}
	return nil
}

// objectPkgPath returns the import path of the package an object belongs to,
// or "" for builtins and nil objects.
func objectPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// recvNamed digs the named type out of a method receiver type, unwrapping one
// level of pointer.
func recvNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedFrom reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	n := recvNamed(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// errorReturning reports whether the call's callee has an error as its final
// result.
func errorReturning(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// isBlank reports whether an expression is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isNil reports whether an expression is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && obj == types.Universe.Lookup("nil")
}
