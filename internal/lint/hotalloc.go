package lint

import (
	"go/ast"
	"go/types"
)

var analyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "scheduling and gossip hot paths stay allocation-free: no closures, no map/slice literals, no unpreallocated append growth, no interface boxing of non-pointer values",
	Run:  runHotAlloc,
}

// simHotFuncs names the engine functions on the per-event scheduling path.
// Sampling helpers (Jitter, Poisson, Perm) run per event too but allocate
// nothing by construction; Perm is excluded because rng.Perm allocates and is
// only called at topology setup.
var simHotFuncs = map[string]bool{
	"At": true, "After": true, "AtHandler": true, "AfterHandler": true,
	"AtHandlerLane": true, "minLane": true,
	"schedule": true, "less": true, "siftUp": true, "siftDown": true,
	"Step": true, "Run": true, "RunUntil": true, "Pending": true,
}

// hotAllocFunc reports whether a function is on the allocation-free hot
// path: the engine scheduling functions plus the ethsim delivery-path set
// shared with nodeterminism's map-iteration ban.
func hotAllocFunc(name string) bool {
	return simHotFuncs[name] || deliveryPathFuncs[name]
}

// runHotAlloc enforces the allocation bans inside hot-path function bodies
// in the sim/ethsim packages and inside the O(Δ) tick-path functions of the
// graph and tracker packages. The bans mirror what the hot-path overhaul
// (DESIGN.md §8) bought — and what keeps the incremental tracker's tick cost
// proportional to the delta (DESIGN.md §13): every closure, map/slice
// literal, growing append on a fresh local, or interface boxing of a
// non-pointer value is one allocation per event, per message, or per
// tracked change.
func runHotAlloc(pkg *Package) []Finding {
	hotScope := pathIn(pkg.ScopePath(), heapBanScope...)
	tickScope := pathIn(pkg.ScopePath(), tickPathScope...)
	if !hotScope && !tickScope {
		return nil
	}
	var findings []Finding
	for _, file := range pkg.Files {
		if pkg.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if (hotScope && hotAllocFunc(name)) || (tickScope && tickPathFuncs[name]) {
				findings = append(findings, hotAllocScan(pkg, fn)...)
			}
		}
	}
	return findings
}

func hotAllocScan(pkg *Package, fn *ast.FuncDecl) []Finding {
	var findings []Finding
	info := pkg.Info
	name := fn.Name.Name
	growing := growingLocals(info, fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			findings = append(findings, report(pkg, x, "hotalloc",
				"closure allocated in hot-path function "+name+"; hoist it to a method and schedule via Handler+arg"))
		case *ast.CompositeLit:
			tv, ok := info.Types[x]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				findings = append(findings, report(pkg, x, "hotalloc",
					"map literal allocates in hot-path function "+name+"; hoist the map out of the per-event path"))
			case *types.Slice:
				findings = append(findings, report(pkg, x, "hotalloc",
					"slice literal allocates in hot-path function "+name+"; reuse a pooled buffer"))
			}
		case *ast.AssignStmt:
			findings = append(findings, growingAppends(pkg, name, x, growing)...)
		case *ast.CallExpr:
			findings = append(findings, boxingArgs(pkg, name, x)...)
		}
		return true
	})
	return findings
}

// growingLocals collects function-local slice variables declared with no
// preallocated backing: `var s []T` or `s := make([]T, 0)`. Appending to one
// of these reallocates as it grows. Locals initialized by reslicing (a
// pooled buffer, `s := n.scratch[:0]`), by make with a length or capacity,
// or taken from parameters and fields are exempt — their growth is amortized
// into a long-lived allocation. A marked local that is later reassigned from
// anything but append/make-zero is unmarked: `var s []T; if ok { s =
// pool[:0] }` is the conditional pooled-reslice idiom, not fresh growth.
func growingLocals(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(id *ast.Ident) {
		if v, ok := info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeclStmt:
			gen, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue // initialized declarations judged by their init
				}
				for _, id := range vs.Names {
					mark(id)
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if info.Defs[id] != nil {
					if zeroLenMake(info, rhs) {
						mark(id)
					}
					continue
				}
				// Reassignment of an existing local: a pooled reslice (or any
				// non-growing source) clears the mark; append and zero-make
				// keep it.
				v, ok := info.Uses[id].(*types.Var)
				if !ok || !out[v] {
					continue
				}
				if !zeroLenMake(info, rhs) && !isAppendCall(info, rhs) {
					delete(out, v)
				}
			}
		}
		return true
	})
	return out
}

// isAppendCall reports whether the expression is a call to the predeclared
// append.
func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && info.Uses[id] == types.Universe.Lookup("append")
}

// zeroLenMake reports whether an expression is make([]T, 0) with no capacity
// — a slice guaranteed to reallocate on first append.
func zeroLenMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || info.Uses[id] != types.Universe.Lookup("make") {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}

// growingAppends flags `s = append(s, ...)` where s is a growing local.
func growingAppends(pkg *Package, fnName string, asg *ast.AssignStmt, growing map[*types.Var]bool) []Finding {
	var findings []Finding
	info := pkg.Info
	if len(asg.Lhs) != len(asg.Rhs) {
		return nil
	}
	for i, rhs := range asg.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || info.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		target, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		v, _ := info.Uses[target].(*types.Var)
		if v == nil {
			v, _ = info.Defs[target].(*types.Var)
		}
		if v != nil && growing[v] {
			findings = append(findings, report(pkg, asg, "hotalloc",
				"append grows unpreallocated local "+target.Name+" in hot-path function "+fnName+"; reslice a pooled buffer ([:0]) or preallocate capacity"))
		}
	}
	return findings
}

// boxingArgs flags call arguments whose concrete, non-pointer-shaped value
// is passed to an interface parameter: storing such a value in an interface
// allocates. Pointers, channels, maps, and funcs share the interface's word
// and do not.
func boxingArgs(pkg *Package, fnName string, call *ast.CallExpr) []Finding {
	info := pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil // type conversion
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var findings []Finding
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() {
			continue
		}
		t := at.Type
		if _, already := t.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(t) {
			continue
		}
		findings = append(findings, report(pkg, arg, "hotalloc",
			"value of type "+t.String()+" boxed into an interface argument in hot-path function "+fnName+"; pass a pointer or use the Handler+uint64 form"))
	}
	return findings
}

// paramType returns the static type of parameter i, unwrapping the variadic
// slice when the call does not use `...`.
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	last := params.Len() - 1
	if i < last {
		return params.At(i).Type()
	}
	if !sig.Variadic() {
		if i == last {
			return params.At(i).Type()
		}
		return nil
	}
	if hasEllipsis {
		if i == last {
			return params.At(last).Type()
		}
		return nil
	}
	slice, ok := params.At(last).Type().(*types.Slice)
	if !ok {
		return nil
	}
	return slice.Elem()
}

// pointerShaped reports whether values of t fit an interface's data word
// without allocating: pointers, channels, maps, funcs, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
