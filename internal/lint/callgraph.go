package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is a static, module-wide call graph. Nodes are function and
// method declarations found in the program's packages; edges approximate the
// may-call relation:
//
//   - direct calls and method calls on concrete receivers resolve to their
//     single target;
//   - calls through an interface method resolve to that method on every
//     in-module named type whose method set satisfies the interface
//     (types.Implements), a sound over-approximation within the module;
//   - calls inside a function literal are attributed to the enclosing
//     declaration, since the literal runs with the declaration's frame
//     either inline or as a spawned goroutine;
//   - calls to functions outside the module (stdlib) have no node and no
//     edge — the analyzers that consume the graph treat unknown callees as
//     having no interesting effects.
//
// Edge order is deterministic: Callees() returns targets sorted by node key.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
	// byName indexes nodes by their stable key for deterministic iteration.
	keys  []string
	byKey map[string]*CGNode
	// impls are the module's named non-interface types, interface-dispatch
	// candidates, in deterministic order.
	impls []*types.Named
}

// CGNode is one declared function or method in the module.
type CGNode struct {
	Fn       *types.Func
	Decl     *ast.FuncDecl
	Pkg      *Package
	TestFile bool // declared in a _test.go file

	callees map[*CGNode]bool
}

// Key returns the node's stable identifier: package path, receiver type if
// any, and function name — e.g. "toposhot/internal/node.(*peer).send".
func (n *CGNode) Key() string {
	return funcKey(n.Fn)
}

func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		name := ""
		if ptr, ok := recv.(*types.Pointer); ok {
			if named := recvNamed(ptr); named != nil {
				name = "(*" + named.Obj().Name() + ")"
			}
		} else if named := recvNamed(recv); named != nil {
			name = named.Obj().Name()
		}
		if name != "" {
			return pkg + "." + name + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// Callees returns the node's call targets sorted by key.
func (n *CGNode) Callees() []*CGNode {
	out := make([]*CGNode, 0, len(n.callees))
	for c := range n.callees {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Node returns the graph node for a declared function, or nil if the
// function is not part of the module (or has no body).
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	return g.nodes[fn]
}

// Nodes returns every node sorted by key.
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.keys))
	for _, k := range g.keys {
		out = append(out, g.byKey[k])
	}
	return out
}

// BuildCallGraph constructs the static call graph over all packages in the
// program. Packages without type information (load errors) contribute no
// nodes; the graph is still usable for the rest of the module.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		nodes: make(map[*types.Func]*CGNode),
		byKey: make(map[string]*CGNode),
	}

	// Pass 1: one node per function declaration with a body.
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			test := pkg.IsTestFile(file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Fn: fn, Decl: fd, Pkg: pkg, TestFile: test, callees: make(map[*CGNode]bool)}
				g.nodes[fn] = n
			}
		}
	}
	for fn, n := range g.nodes {
		_ = fn
		g.byKey[n.Key()] = n
	}
	for k := range g.byKey {
		g.keys = append(g.keys, k)
	}
	sort.Strings(g.keys)

	g.impls = collectImplementers(prog)

	// Pass 2: edges. Calls inside FuncLits belong to the enclosing decl.
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				caller := g.nodes[fn]
				if caller == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, target := range g.Resolve(pkg, call) {
						caller.callees[target] = true
					}
					return true
				})
			}
		}
	}
	return g
}

// Resolve maps one call expression to the module function declarations it may
// invoke: a single node for direct and concrete-method calls, every
// implementing method for interface-method calls, nothing for out-of-module
// callees and indirect calls through function values.
func (g *CallGraph) Resolve(pkg *Package, call *ast.CallExpr) []*CGNode {
	obj := calleeObject(pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if target := g.nodes[fn]; target != nil {
		return []*CGNode{target}
	}
	// No declaration node: either out-of-module, or an interface method.
	// Interface methods dispatch dynamically — link every in-module
	// implementation.
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*CGNode
	for _, named := range g.impls {
		if !implementsIface(named, iface) {
			continue
		}
		m := lookupMethod(named, fn.Name())
		if m == nil {
			continue
		}
		if target := g.nodes[m]; target != nil {
			out = append(out, target)
		}
	}
	return out
}

// collectImplementers gathers every named type declared in the module, in
// deterministic order, as interface-implementation candidates.
func collectImplementers(prog *Program) []*types.Named {
	var out []*types.Named
	for _, pkg := range prog.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// implementsIface reports whether T or *T satisfies the interface.
func implementsIface(named *types.Named, iface *types.Interface) bool {
	if types.Implements(named, iface) {
		return true
	}
	return types.Implements(types.NewPointer(named), iface)
}

// lookupMethod finds the concrete *types.Func for a method name on T or *T.
func lookupMethod(named *types.Named, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	fn, _ := obj.(*types.Func)
	return fn
}
