package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source and returns its BlockStmt.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGExitReachability(t *testing.T) {
	cases := []struct {
		name      string
		body      string
		reachable bool
	}{
		{"empty", ``, true},
		{"straight line", `x := 1; _ = x`, true},
		{"return", `return`, true},
		{"infinite loop", `for { }`, false},
		{"infinite loop with work", `for { work() }`, false},
		{"loop with return", `for { if cond() { return } }`, true},
		{"loop with break", `for { if cond() { break } }`, true},
		{"conditional loop", `for cond() { }`, true},
		{"three-clause loop", `for i := 0; i < 10; i++ { }`, true},
		{"range loop", `for range xs { }`, true},
		{"range over channel", `for v := range ch { _ = v }`, true},
		{"empty select", `select { }`, false},
		{"select with case", `select { case <-ch: }`, true},
		{"select in infinite loop no exit", `for { select { case <-ch: work() } }`, false},
		{"select in infinite loop with return", "for {\n\tselect {\n\tcase <-ch:\n\t\treturn\n\tcase <-done:\n\t}\n}", true},
		{"labeled break from nested loop", "outer:\nfor { for { break outer } }", true},
		{"labeled continue stays inside", "outer:\nfor { for { continue outer } }", false},
		{"unlabeled break only exits inner", `for { for { break } }`, false},
		{"panic terminates", `for { panic("boom") }`, true},
		{"goto over-approximates", "for { goto done }\ndone:\nreturn", true},
		{"switch without default falls through", `for { switch x() { case 1: continue }; break }`, true},
		{"switch all paths loop", `for { switch x() { case 1: default: } }`, false},
		{"fallthrough chains cases", `switch x() { case 1: fallthrough; case 2: return }`, true},
		{"if else both return", `if cond() { return } else { return }; unreachable()`, true},
		{"select default makes progress", `for { select { case <-ch: default: break } }`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseBody(t, tc.body))
			if got := cfg.ExitReachable(); got != tc.reachable {
				t.Errorf("ExitReachable() = %v, want %v\nbody:\n%s", got, tc.reachable, tc.body)
			}
		})
	}
}

func TestCFGBlocksCoverStatements(t *testing.T) {
	body := parseBody(t, `
x := 1
if x > 0 {
	x++
} else {
	x--
}
for i := 0; i < x; i++ {
	use(i)
}
return`)
	cfg := BuildCFG(body)
	total := 0
	for _, b := range cfg.Blocks {
		total += len(b.Nodes)
	}
	if total == 0 {
		t.Fatal("no statements captured in any block")
	}
	// Entry must have successors; Exit must have none.
	if len(cfg.Entry.Succs) == 0 {
		t.Error("entry block has no successors")
	}
	if len(cfg.Exit.Succs) != 0 {
		t.Errorf("exit block has %d successors, want 0", len(cfg.Exit.Succs))
	}
}
