package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var analyzerTraceNilsafe = &Analyzer{
	Name: "trace-nilsafe",
	Doc:  "internal/trace recorders are nil-safe; don't guard pure recording with nil checks or dereference a Tracer",
	Run:  runTraceNilsafe,
}

var analyzerTraceSpanname = &Analyzer{
	Name: "trace-spanname",
	Doc:  "span and event names passed to StartSpan/Event must be compile-time constants",
	Run:  runTraceSpanname,
}

// tracePkg is the tracing package whose Tracer/Span methods are all no-ops
// on the zero value, making defensive nil guards around recording dead
// weight. Nil checks that gate non-recording work (wiring a tracer into a
// network, skipping lane construction) stay legal.
var tracePkg = modulePrefix + "/internal/trace"

// traceRecorderType reports whether t is trace.Tracer or trace.Span
// (possibly behind a pointer).
func traceRecorderType(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	n := recvNamed(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != tracePkg {
		return "", false
	}
	name := n.Obj().Name()
	if name == "Tracer" || name == "Span" {
		return name, true
	}
	return "", false
}

// recorderCall reports whether the expression is a method call whose
// receiver is a trace.Tracer or trace.Span — i.e. a call that is already
// nil-safe and needs no guard.
func recorderCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	_, isRecorder := traceRecorderType(tv.Type)
	return isRecorder
}

// guardOnlyRecords reports whether every statement in the guarded block is a
// nil-safe recording call (possibly deferred or assigned, as in
// `sp := tr.StartSpan(...)`).
func guardOnlyRecords(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, st := range body.List {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if !recorderCall(info, s.X) {
				return false
			}
		case *ast.DeferStmt:
			if !recorderCall(info, s.Call) {
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if !recorderCall(info, rhs) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

func runTraceNilsafe(pkg *Package) []Finding {
	if pkg.ScopePath() == tracePkg {
		return nil // the package that implements nil-safety may inspect nil
	}
	var findings []Finding
	info := pkg.Info
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IfStmt:
				cond, ok := x.Cond.(*ast.BinaryExpr)
				if !ok || cond.Op != token.NEQ {
					return true
				}
				var other ast.Expr
				if isNil(info, cond.X) {
					other = cond.Y
				} else if isNil(info, cond.Y) {
					other = cond.X
				} else {
					return true
				}
				tv, ok := info.Types[other]
				if !ok {
					return true
				}
				if name, ok := traceRecorderType(tv.Type); ok && guardOnlyRecords(info, x.Body) {
					findings = append(findings, report(pkg, x, "trace-nilsafe",
						"nil guard around trace."+name+" recording; recorder methods are nil-safe, call them unconditionally"))
				}
			case *ast.StarExpr:
				// Value-position StarExpr is a dereference; type position
				// (pointer syntax) has IsType set.
				if tv, ok := info.Types[x]; ok && tv.IsType() {
					return true
				}
				inner, ok := info.Types[x.X]
				if !ok {
					return true
				}
				if name, ok := traceRecorderType(inner.Type); ok {
					findings = append(findings, report(pkg, x, "trace-nilsafe",
						"dereference of trace."+name+"; a nil recorder would panic — use its methods instead"))
				}
			}
			return true
		})
	}
	return findings
}

func runTraceSpanname(pkg *Package) []Finding {
	var findings []Finding
	info := pkg.Info
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObject(info, call)
			if obj == nil || objectPkgPath(obj) != tracePkg {
				return true
			}
			if obj.Name() != "StartSpan" && obj.Name() != "Event" {
				return true
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if _, ok := traceRecorderType(sig.Recv().Type()); !ok {
				return true
			}
			if tv, ok := info.Types[call.Args[0]]; !ok || tv.Value == nil {
				findings = append(findings, report(pkg, call.Args[0], "trace-spanname",
					obj.Name()+" name must be a compile-time constant so traces aggregate and lint stays greppable"))
			}
			return true
		})
	}
	return findings
}
