package lint

import (
	"go/token"
	"sort"
	"strings"
)

// ignoreKey identifies one suppressible (file, line, rule) site.
type ignoreKey struct {
	file string
	line int
	rule string
}

// IgnorePrefix introduces a suppression directive:
//
//	//lint:ignore rule-id[,rule-id...] reason
//
// placed on the offending line or the line directly above it.
const IgnorePrefix = "//lint:ignore"

// ignoreDirective is one parsed, well-formed //lint:ignore comment. The
// driver tracks whether it actually suppressed anything: a directive that
// suppresses no finding has outlived the code it excused and is reported
// under StaleIgnoreRule.
type ignoreDirective struct {
	pos   token.Position
	rules []string
	used  bool
}

// ignoreTable holds every package's parsed directives, keyed module-wide.
// Filenames are module-root-relative and therefore unique across packages.
type ignoreTable struct {
	byKey      map[ignoreKey]*ignoreDirective
	directives []*ignoreDirective // in collection order, for the stale audit
}

func newIgnoreTable() *ignoreTable {
	return &ignoreTable{byKey: make(map[ignoreKey]*ignoreDirective)}
}

// collect parses every comment in the package for ignore directives.
// Malformed directives (missing rule, missing reason, unknown rule) are
// returned as findings under the typecheck pseudo-rule: a directive that
// silently fails to parse would silently fail to suppress.
func (t *ignoreTable) collect(pkg *Package) []Finding {
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				pos := relPosition(pkg, c.Pos())
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //lint:ignoreXYZ — not our directive.
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: TypecheckRule,
						Msg:  "malformed ignore directive: want //lint:ignore rule-id reason",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				ok := true
				for _, r := range rules {
					if ByName(r) == nil {
						bad = append(bad, Finding{
							Pos:  pos,
							Rule: TypecheckRule,
							Msg:  "ignore directive names unknown rule " + quote(r),
						})
						ok = false
					}
				}
				if !ok {
					continue
				}
				d := &ignoreDirective{pos: pos, rules: rules}
				t.directives = append(t.directives, d)
				// The directive suppresses findings on its own line and the
				// line below (standalone-comment placement).
				for _, r := range rules {
					t.byKey[ignoreKey{pos.Filename, pos.Line, r}] = d
					t.byKey[ignoreKey{pos.Filename, pos.Line + 1, r}] = d
				}
			}
		}
	}
	return bad
}

// matches reports whether a finding is suppressed by a directive on its line
// (trailing comment) or the line above (standalone comment), marking the
// directive used.
func (t *ignoreTable) matches(f Finding) bool {
	d := t.byKey[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Rule}]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// stale reports directives that suppressed nothing. A directive is only
// judged when every rule it names was actually run — under a -rules subset
// an idle directive proves nothing — so the audit never false-positives on
// partial runs.
func (t *ignoreTable) stale(ran []*Analyzer) []Finding {
	ranSet := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	var out []Finding
	for _, d := range t.directives {
		if d.used {
			continue
		}
		judged := true
		for _, r := range d.rules {
			if !ranSet[r] {
				judged = false
				break
			}
		}
		if !judged {
			continue
		}
		sorted := append([]string(nil), d.rules...)
		sort.Strings(sorted)
		out = append(out, Finding{
			Pos:  d.pos,
			Rule: StaleIgnoreRule,
			Msg: "ignore directive for " + strings.Join(sorted, ",") +
				" suppresses nothing; the code it excused is gone — remove the directive",
		})
	}
	return out
}

func quote(s string) string {
	return `"` + s + `"`
}
