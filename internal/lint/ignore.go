package lint

import (
	"strings"
)

// ignoreKey identifies one suppressible (file, line, rule) site.
type ignoreKey struct {
	file string
	line int
	rule string
}

// ignoreSet holds the parsed //lint:ignore directives of one package.
type ignoreSet map[ignoreKey]bool

// IgnorePrefix introduces a suppression directive:
//
//	//lint:ignore rule-id[,rule-id...] reason
//
// placed on the offending line or the line directly above it.
const IgnorePrefix = "//lint:ignore"

// collectIgnores parses every comment in the package for ignore directives.
// Malformed directives (missing rule, missing reason, unknown rule) are
// returned as findings under the typecheck pseudo-rule: a directive that
// silently fails to parse would silently fail to suppress.
func collectIgnores(pkg *Package) (ignoreSet, []Finding) {
	set := make(ignoreSet)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				pos := relPosition(pkg.Fset, c.Pos())
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //lint:ignoreXYZ — not our directive.
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: TypecheckRule,
						Msg:  "malformed ignore directive: want //lint:ignore rule-id reason",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				ok := true
				for _, r := range rules {
					if ByName(r) == nil {
						bad = append(bad, Finding{
							Pos:  pos,
							Rule: TypecheckRule,
							Msg:  "ignore directive names unknown rule " + quote(r),
						})
						ok = false
					}
				}
				if !ok {
					continue
				}
				// The directive suppresses findings on its own line and the
				// line below (standalone-comment placement).
				for _, r := range rules {
					set[ignoreKey{pos.Filename, pos.Line, r}] = true
					set[ignoreKey{pos.Filename, pos.Line + 1, r}] = true
				}
			}
		}
	}
	return set, bad
}

// matches reports whether a finding is suppressed by a directive on its line
// (trailing comment) or the line above (standalone comment).
func (s ignoreSet) matches(f Finding) bool {
	return s[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Rule}]
}

func quote(s string) string {
	return `"` + s + `"`
}
