package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkFixture loads one testdata package under a claimed import path and
// returns the formatted findings of the full suite.
func checkFixture(t *testing.T, name, importPath string) string {
	t.Helper()
	pkg, err := LoadPackage(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, pkg.TypeErrors[0])
	}
	return Format(CheckPackage(pkg, Analyzers()))
}

// golden compares got against testdata/<name>.golden, rewriting it under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run go test -run %s -update to create): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestNoDeterminismGolden(t *testing.T) {
	golden(t, "nodeterminism", checkFixture(t, "nodeterminism", "toposhot/internal/core/fixture"))
}

// TestHotPathGolden loads one fixture under both hot-path scopes: under the
// ethsim path only delivery-path functions reject map iteration; under the
// sim path the whole package is hot and every map range is flagged. The
// container/heap import is flagged in both.
func TestHotPathGolden(t *testing.T) {
	golden(t, "hotpath_ethsim", checkFixture(t, "hotpath", "toposhot/internal/ethsim/fixture"))
	golden(t, "hotpath_sim", checkFixture(t, "hotpath", "toposhot/internal/sim/fixture"))
}

func TestLockSafeGolden(t *testing.T) {
	golden(t, "locksafe", checkFixture(t, "locksafe", "toposhot/internal/node/fixture"))
}

func TestErrcheckWireGolden(t *testing.T) {
	golden(t, "errcheckwire", checkFixture(t, "errcheckwire", "toposhot/internal/node/wirefixture"))
}

func TestBigintAliasGolden(t *testing.T) {
	golden(t, "bigintalias", checkFixture(t, "bigintalias", "toposhot/internal/txpool/fixture"))
}

func TestMetricsNilsafeGolden(t *testing.T) {
	golden(t, "metricsnilsafe", checkFixture(t, "metricsnilsafe", "toposhot/internal/node/metricsfixture"))
}

// TestIgnoreDirectives covers suppression (line-above and trailing), the
// unknown-rule directive error, and the missing-reason directive error.
func TestTraceLintGolden(t *testing.T) {
	golden(t, "tracenilsafe", checkFixture(t, "tracenilsafe", "toposhot/internal/experiments/tracefixture"))
}

func TestIgnoreDirectives(t *testing.T) {
	got := checkFixture(t, "ignore", "toposhot/internal/sim/fixture")
	golden(t, "ignore", got)

	// The two well-formed directives must have suppressed their findings:
	// exactly the two unsuppressed time.Now sites remain as nodeterminism.
	if n := strings.Count(got, "[nodeterminism]"); n != 2 {
		t.Errorf("want 2 unsuppressed nodeterminism findings, got %d:\n%s", n, got)
	}
	if !strings.Contains(got, "unknown rule") {
		t.Errorf("unknown-rule directive not reported:\n%s", got)
	}
	if !strings.Contains(got, "malformed ignore directive") {
		t.Errorf("missing-reason directive not reported:\n%s", got)
	}
}

// TestUnknownRuleRejected: selecting a rule that does not exist fails fast.
func TestUnknownRuleRejected(t *testing.T) {
	_, err := Run(Options{Rules: []string{"nosuchrule"}})
	if err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Fatalf("want unknown-rule error, got %v", err)
	}
}

// TestBrokenPackageReports: a package with a type error degrades to a
// typecheck finding, not a panic or an aborted run.
func TestBrokenPackageReports(t *testing.T) {
	pkg, err := LoadPackage(filepath.Join("testdata", "src", "broken"), "toposhot/internal/brokenfixture")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := CheckPackage(pkg, Analyzers())
	if len(findings) == 0 {
		t.Fatal("want at least one typecheck finding, got none")
	}
	for _, f := range findings {
		if f.Rule != TypecheckRule {
			t.Errorf("unexpected non-typecheck finding: %s", f)
		}
	}
	if !strings.Contains(Format(findings), "undefinedSymbol") {
		t.Errorf("typecheck finding does not mention the undefined symbol:\n%s", Format(findings))
	}
}

// TestByName covers rule lookup used by the CLI's -rules flag.
func TestByName(t *testing.T) {
	for _, name := range AnalyzerNames() {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil for a listed rule", name)
		}
	}
	if ByName("bogus") != nil {
		t.Error("ByName(bogus) should be nil")
	}
	if len(AnalyzerNames()) < 5 {
		t.Errorf("want at least 5 analyzers, got %v", AnalyzerNames())
	}
}

// TestTreeClean runs the full suite over the real module: the tree must lint
// clean, so reintroducing any fixture violation fails this test as well as
// the CI lint job.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	findings, err := Run(Options{Dir: "../.."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) > 0 {
		t.Errorf("module tree is not lint-clean:\n%s", Format(findings))
	}
}
