package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkFixture loads one testdata package under a claimed import path and
// returns the formatted findings of the full suite (external test package
// included when the fixture has one).
func checkFixture(t *testing.T, name, importPath string) string {
	t.Helper()
	pkg, ext, err := LoadPackage(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, pkg.TypeErrors[0])
	}
	pkgs := []*Package{pkg}
	if ext != nil {
		pkgs = append(pkgs, ext)
	}
	return Format(CheckProgram(NewProgram(pkgs...), Analyzers(), 1))
}

// golden compares got against testdata/<name>.golden, rewriting it under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run go test -run %s -update to create): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestNoDeterminismGolden(t *testing.T) {
	golden(t, "nodeterminism", checkFixture(t, "nodeterminism", "toposhot/internal/core/fixture"))
}

// TestHotPathGolden loads one fixture under both hot-path scopes: under the
// ethsim path only delivery-path functions reject map iteration; under the
// sim path the whole package is hot and every map range is flagged. The
// container/heap import is flagged in both.
func TestHotPathGolden(t *testing.T) {
	golden(t, "hotpath_ethsim", checkFixture(t, "hotpath", "toposhot/internal/ethsim/fixture"))
	golden(t, "hotpath_sim", checkFixture(t, "hotpath", "toposhot/internal/sim/fixture"))
}

func TestLockSafeGolden(t *testing.T) {
	golden(t, "locksafe", checkFixture(t, "locksafe", "toposhot/internal/node/fixture"))
}

func TestErrcheckWireGolden(t *testing.T) {
	golden(t, "errcheckwire", checkFixture(t, "errcheckwire", "toposhot/internal/node/wirefixture"))
}

func TestBigintAliasGolden(t *testing.T) {
	golden(t, "bigintalias", checkFixture(t, "bigintalias", "toposhot/internal/txpool/fixture"))
}

func TestMetricsNilsafeGolden(t *testing.T) {
	golden(t, "metricsnilsafe", checkFixture(t, "metricsnilsafe", "toposhot/internal/node/metricsfixture"))
}

// TestIgnoreDirectives covers suppression (line-above and trailing), the
// unknown-rule directive error, and the missing-reason directive error.
func TestTraceLintGolden(t *testing.T) {
	golden(t, "tracenilsafe", checkFixture(t, "tracenilsafe", "toposhot/internal/experiments/tracefixture"))
}

// TestLockOrderGolden: reversed acquisition orders — direct and through a
// call chain — are reported as cycles; a consistent order and hand-over-hand
// locking over one type stay silent.
func TestLockOrderGolden(t *testing.T) {
	golden(t, "lockorder", checkFixture(t, "lockorder", "toposhot/internal/lockfixture"))
}

// TestGoroLeakGolden: goroutines with no reachable exit fire under the
// live-node scope; done-channel, close-signal, and run-to-completion
// goroutines stay silent.
func TestGoroLeakGolden(t *testing.T) {
	golden(t, "goroleak", checkFixture(t, "goroleak", "toposhot/internal/node/gorofixture"))
}

// TestHotAllocGolden: closures, map/slice literals, growing appends, and
// interface boxing fire inside delivery-path functions; pooled idioms and
// non-hot functions stay silent.
func TestHotAllocGolden(t *testing.T) {
	golden(t, "hotalloc", checkFixture(t, "hotalloc", "toposhot/internal/ethsim/allocfixture"))
}

// TestTickPathGolden loads one fixture under both tick-path scopes. Under
// the graph path only the tick-path rules fire (map iteration and
// allocations inside the named dyn*/trk* functions); under the tracker path
// the package is also in the nodeterminism simulation scope, so the
// order-dependent float accumulation inside the map range fires as well.
// The pooled reslice and the dynRebuild fallback stay silent in both.
func TestTickPathGolden(t *testing.T) {
	golden(t, "tickpath_graph", checkFixture(t, "tickpath", "toposhot/internal/graph/fixture"))
	golden(t, "tickpath_tracker", checkFixture(t, "tickpath", "toposhot/internal/tracker/fixture"))
}

// TestHotAllocRegression: seeding a closure-per-message send into a gossip
// dispatch function shaped like ethsim's must fire the rule — the guard
// against quietly reverting the allocation-free scheduling API.
func TestHotAllocRegression(t *testing.T) {
	got := checkFixture(t, "hotalloc_regress", "toposhot/internal/ethsim/regress")
	if !strings.Contains(got, "[hotalloc]") || !strings.Contains(got, "closure") {
		t.Errorf("closure-per-message dispatch did not fire hotalloc:\n%s", got)
	}
}

// TestStaleIgnore: a directive still suppressing a finding is silent; one
// whose finding is gone is reported under stale-ignore.
func TestStaleIgnore(t *testing.T) {
	got := checkFixture(t, "staleignore", "toposhot/internal/sim/stalefixture")
	golden(t, "staleignore", got)
	if n := strings.Count(got, "["+StaleIgnoreRule+"]"); n != 1 {
		t.Errorf("want exactly 1 stale-ignore finding, got %d:\n%s", n, got)
	}
	if strings.Contains(got, "[nodeterminism]") {
		t.Errorf("used directive failed to suppress:\n%s", got)
	}
}

// TestParallelEquivalence: the driver's output is byte-identical at any pool
// width. The program combines every firing fixture so the equivalence is
// exercised on a finding-heavy merge, not an empty one.
func TestParallelEquivalence(t *testing.T) {
	fixtures := []struct{ name, path string }{
		{"nodeterminism", "toposhot/internal/core/fixture"},
		{"lockorder", "toposhot/internal/lockfixture"},
		{"goroleak", "toposhot/internal/node/gorofixture"},
		{"hotalloc", "toposhot/internal/ethsim/allocfixture"},
	}
	var pkgs []*Package
	for _, f := range fixtures {
		pkg, ext, err := LoadPackage(filepath.Join("testdata", "src", f.name), f.path)
		if err != nil {
			t.Fatalf("load %s: %v", f.name, err)
		}
		pkgs = append(pkgs, pkg)
		if ext != nil {
			pkgs = append(pkgs, ext)
		}
	}
	serial := Format(CheckProgram(NewProgram(pkgs...), Analyzers(), 1))
	if serial == "" {
		t.Fatal("equivalence corpus produced no findings; the test is vacuous")
	}
	for _, width := range []int{2, 4, 8, 16} {
		got := Format(CheckProgram(NewProgram(pkgs...), Analyzers(), width))
		if got != serial {
			t.Errorf("width %d differs from serial:\n--- serial ---\n%s--- width %d ---\n%s",
				width, serial, width, got)
		}
	}
}

// writeTree lays out a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestNoTestsOption: by default _test.go files (in-package and external) are
// linted; NoTests drops them from the load entirely.
func TestNoTestsOption(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                     "module toposhot\n\ngo 1.22\n",
		"internal/sim/x/x.go":        "package x\n\nfunc Ok() int { return 1 }\n",
		"internal/sim/x/x_test.go":   "package x\n\nimport \"time\"\n\nfunc helper() time.Time { return time.Now() }\n",
		"internal/sim/x/ext_test.go": "package x_test\n\nimport \"time\"\n\nvar T = time.Now()\n",
	})
	withTests, err := Run(Options{Dir: dir})
	if err != nil {
		t.Fatalf("run with tests: %v", err)
	}
	if n := len(withTests); n != 2 {
		t.Fatalf("want 2 findings (in-package + external test), got %d:\n%s", n, Format(withTests))
	}
	for _, f := range withTests {
		if f.Rule != "nodeterminism" {
			t.Errorf("unexpected rule %s: %s", f.Rule, f)
		}
	}
	without, err := Run(Options{Dir: dir, NoTests: true})
	if err != nil {
		t.Fatalf("run without tests: %v", err)
	}
	if len(without) != 0 {
		t.Errorf("NoTests run should be clean, got:\n%s", Format(without))
	}
}

// TestLoaderErrorPaths: broken inputs degrade to typecheck findings — never
// a panic, never an aborted run — and analyzers tolerate the partial type
// information that results.
func TestLoaderErrorPaths(t *testing.T) {
	cases := []struct {
		name     string
		files    map[string]string
		wantMsg  string // substring of a typecheck finding
		wantAlso string // substring of an analyzer finding that must survive
		wantErr  string // substring of the returned error (load-level failures)
	}{
		{
			name: "syntax error",
			files: map[string]string{
				"go.mod":      "module toposhot\n\ngo 1.22\n",
				"bad/bad.go":  "package bad\n\nfunc broken( {\n",
				"bad/good.go": "package bad\n\nfunc Fine() {}\n",
			},
			wantMsg: "expected",
		},
		{
			name: "type error",
			files: map[string]string{
				"go.mod":   "module toposhot\n\ngo 1.22\n",
				"bad/t.go": "package bad\n\nfunc f() int { return undefinedSymbol }\n",
			},
			wantMsg: "undefinedSymbol",
		},
		{
			name: "unresolvable import",
			files: map[string]string{
				"go.mod":   "module toposhot\n\ngo 1.22\n",
				"bad/i.go": "package bad\n\nimport \"toposhot/internal/nosuchpkg\"\n\nvar _ = nosuchpkg.X\n",
			},
			wantMsg: "nosuchpkg",
		},
		{
			name: "hot-path package with broken types still analyzed",
			files: map[string]string{
				"go.mod": "module toposhot\n\ngo 1.22\n",
				"internal/sim/s.go": "package sim\n\n" +
					"func Step() { bad() }\n" +
					"func schedule(m map[int]int) {\n\tfor k := range m {\n\t\t_ = k\n\t}\n}\n",
			},
			// The undefined call is a typecheck finding; the map iteration in a
			// hot function must still be reported off the surviving type info.
			wantMsg:  "bad",
			wantAlso: "map iteration",
		},
		{
			name: "no go files",
			files: map[string]string{
				"go.mod":         "module toposhot\n\ngo 1.22\n",
				"empty/note.txt": "nothing to lint\n",
			},
			wantErr: "no Go files",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeTree(t, tc.files)
			patterns := []string(nil)
			if tc.wantErr != "" {
				patterns = []string{"./empty"}
			}
			findings, err := Run(Options{Dir: dir, Patterns: patterns})
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			out := Format(findings)
			if !strings.Contains(out, tc.wantMsg) {
				t.Errorf("findings missing %q:\n%s", tc.wantMsg, out)
			}
			if tc.wantAlso != "" && !strings.Contains(out, tc.wantAlso) {
				t.Errorf("analyzer finding %q missing on the broken package:\n%s", tc.wantAlso, out)
			}
			for _, f := range findings {
				if f.Rule != TypecheckRule && f.Rule != "nodeterminism" {
					t.Errorf("unexpected rule %s: %s", f.Rule, f)
				}
			}
		})
	}
}

func TestIgnoreDirectives(t *testing.T) {
	got := checkFixture(t, "ignore", "toposhot/internal/sim/fixture")
	golden(t, "ignore", got)

	// The two well-formed directives must have suppressed their findings:
	// exactly the two unsuppressed time.Now sites remain as nodeterminism.
	if n := strings.Count(got, "[nodeterminism]"); n != 2 {
		t.Errorf("want 2 unsuppressed nodeterminism findings, got %d:\n%s", n, got)
	}
	if !strings.Contains(got, "unknown rule") {
		t.Errorf("unknown-rule directive not reported:\n%s", got)
	}
	if !strings.Contains(got, "malformed ignore directive") {
		t.Errorf("missing-reason directive not reported:\n%s", got)
	}
}

// TestUnknownRuleRejected: selecting a rule that does not exist fails fast.
func TestUnknownRuleRejected(t *testing.T) {
	_, err := Run(Options{Rules: []string{"nosuchrule"}})
	if err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Fatalf("want unknown-rule error, got %v", err)
	}
}

// TestBrokenPackageReports: a package with a type error degrades to a
// typecheck finding, not a panic or an aborted run.
func TestBrokenPackageReports(t *testing.T) {
	pkg, _, err := LoadPackage(filepath.Join("testdata", "src", "broken"), "toposhot/internal/brokenfixture")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := CheckPackage(pkg, Analyzers())
	if len(findings) == 0 {
		t.Fatal("want at least one typecheck finding, got none")
	}
	for _, f := range findings {
		if f.Rule != TypecheckRule {
			t.Errorf("unexpected non-typecheck finding: %s", f)
		}
	}
	if !strings.Contains(Format(findings), "undefinedSymbol") {
		t.Errorf("typecheck finding does not mention the undefined symbol:\n%s", Format(findings))
	}
}

// TestByName covers rule lookup used by the CLI's -rules flag.
func TestByName(t *testing.T) {
	for _, name := range AnalyzerNames() {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil for a listed rule", name)
		}
	}
	if ByName("bogus") != nil {
		t.Error("ByName(bogus) should be nil")
	}
	if len(AnalyzerNames()) < 5 {
		t.Errorf("want at least 5 analyzers, got %v", AnalyzerNames())
	}
}

// TestTreeClean runs the full suite over the real module: the tree must lint
// clean, so reintroducing any fixture violation fails this test as well as
// the CI lint job.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	findings, err := Run(Options{Dir: "../.."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) > 0 {
		t.Errorf("module tree is not lint-clean:\n%s", Format(findings))
	}
}
