package lint

import (
	"go/ast"
	"go/types"
)

var analyzerLockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no channel send, network write, or callback invocation while a sync.Mutex/RWMutex is held",
	Run:  runLockSafe,
}

// wirePkg is the framing package; calling into it performs a network write.
var wirePkg = modulePrefix + "/internal/wire"

// netBlockingMethods are net-connection methods that touch the socket.
var netBlockingMethods = map[string]bool{
	"Write": true, "Read": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

func runLockSafe(pkg *Package) []Finding {
	var findings []Finding
	forEachFunc(pkg, func(body *ast.BlockStmt) {
		ls := &lockScan{pkg: pkg}
		ls.block(body, map[string]bool{})
		findings = append(findings, ls.findings...)
	})
	return findings
}

// lockScan walks one function body linearly, tracking which mutexes are held.
// Nested blocks receive a copy of the held set, so an early unlock+return
// branch does not leak its release into the fallthrough path. deferred
// unlocks keep the lock held to function end by design.
type lockScan struct {
	pkg      *Package
	findings []Finding
}

func (ls *lockScan) block(b *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range b.List {
		ls.stmt(stmt, held)
	}
}

// copyHeld clones the held set for a nested scope.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (ls *lockScan) stmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, isLock, locks := ls.lockOp(call); isLock {
				if locks {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		ls.check(s, held)
	case *ast.DeferStmt:
		if key, isLock, locks := ls.lockOp(s.Call); isLock && !locks {
			// defer mu.Unlock(): the lock is held for the rest of the
			// function, which is exactly what the held set already says.
			_ = key
			return
		}
		ls.check(s, held)
	case *ast.BlockStmt:
		ls.block(s, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		ls.check(s.Cond, held)
		ls.block(s.Body, copyHeld(held))
		if s.Else != nil {
			ls.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.check(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			ls.stmt(s.Post, inner)
		}
		ls.block(s.Body, inner)
	case *ast.RangeStmt:
		ls.check(s.X, held)
		ls.block(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.check(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cc.Body {
					ls.stmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cc.Body {
					ls.stmt(st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					ls.stmt(cc.Comm, inner)
				}
				for _, st := range cc.Body {
					ls.stmt(st, inner)
				}
			}
		}
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt, held)
	default:
		ls.check(stmt, held)
	}
}

// lockOp classifies a call as a sync lock/unlock operation. It returns the
// lock key (the receiver expression, textually), whether the call is a lock
// operation at all, and whether it acquires (true) or releases (false).
func (ls *lockScan) lockOp(call *ast.CallExpr) (key string, isLock, locks bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	obj := calleeObject(ls.pkg.Info, call)
	if objectPkgPath(obj) != "sync" {
		return "", false, false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), true, false
	}
	return "", false, false
}

// check scans a statement or expression for blocking operations, reporting
// each one found while any lock is held. Function literals are skipped: they
// execute later, not under this lock (and are scanned as functions in their
// own right).
func (ls *lockScan) check(node ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	lock := anyKey(held)
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			ls.findings = append(ls.findings, report(ls.pkg, x, "locksafe",
				"channel send while "+lock+" is held; release the lock before handing off"))
		case *ast.CallExpr:
			ls.checkCall(x, lock)
		}
		return true
	})
}

func (ls *lockScan) checkCall(call *ast.CallExpr, lock string) {
	obj := calleeObject(ls.pkg.Info, call)
	if obj == nil {
		return
	}
	// Network write: any call into the wire framing package, or a blocking
	// method on a net connection.
	if objectPkgPath(obj) == wirePkg {
		ls.findings = append(ls.findings, report(ls.pkg, call, "locksafe",
			"wire."+obj.Name()+" (network write) while "+lock+" is held; copy under the lock, write outside it"))
		return
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() != nil {
			if objectPkgPath(obj) == "net" && netBlockingMethods[fn.Name()] {
				ls.findings = append(ls.findings, report(ls.pkg, call, "locksafe",
					"net connection "+fn.Name()+" while "+lock+" is held; release the lock around socket I/O"))
			}
			return
		}
	}
	// Callback invocation: calling through a function-typed variable (field,
	// parameter, or local) runs arbitrary subscriber code under the lock.
	if v, ok := obj.(*types.Var); ok {
		if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
			ls.findings = append(ls.findings, report(ls.pkg, call, "locksafe",
				"callback "+v.Name()+" invoked while "+lock+" is held; snapshot state and invoke after unlocking"))
		}
	}
}

// anyKey returns one held-lock name for the message, smallest first so the
// report is deterministic.
func anyKey(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
