package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// encodeCorpus is a small fixed finding set covering a regular rule, a
// pseudo-rule, and a column-less position.
func encodeCorpus() []Finding {
	return []Finding{
		{Pos: token.Position{Filename: "internal/sim/sim.go", Line: 42, Column: 7},
			Rule: "nodeterminism", Msg: "call to time.Now in a simulation package"},
		{Pos: token.Position{Filename: "internal/node/node.go", Line: 190},
			Rule: StaleIgnoreRule, Msg: "ignore directive for locksafe suppresses nothing"},
	}
}

// TestSARIFGolden pins the encoder's byte output, and round-trips the
// document through encoding/json to prove it is well-formed SARIF with the
// findings intact.
func TestSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, encodeCorpus()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	golden(t, "sarif", buf.String())

	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad envelope: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "toposhotlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every reportable rule id, including the pseudo-rules, is in the
	// catalogue exactly once.
	seen := make(map[string]int)
	for _, r := range run.Tool.Driver.Rules {
		seen[r.ID]++
	}
	for _, name := range append(AnalyzerNames(), TypecheckRule, StaleIgnoreRule) {
		if seen[name] != 1 {
			t.Errorf("rule %s appears %d times in the catalogue", name, seen[name])
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "nodeterminism" || r0.Level != "error" {
		t.Errorf("result 0: %+v", r0)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/sim/sim.go" || loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("result 0 location: %+v", loc)
	}
}

// TestJSONEncoder round-trips the plain JSON rendering.
func TestJSONEncoder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, encodeCorpus()); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d", len(got))
	}
	if got[0].File != "internal/sim/sim.go" || got[0].Line != 42 || got[0].Column != 7 || got[0].Rule != "nodeterminism" {
		t.Errorf("finding 0: %+v", got[0])
	}
	// The column-less pseudo-rule finding must omit the zero column.
	if strings.Contains(buf.String(), `"column": 0`) {
		t.Errorf("zero column not omitted:\n%s", buf.String())
	}
	if got[1].Rule != StaleIgnoreRule {
		t.Errorf("finding 1: %+v", got[1])
	}
}

// TestEmptySARIF: a clean run still emits a valid document with the rule
// catalogue and an empty (not null) results array.
func TestEmptySARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run must encode results as []:\n%s", buf.String())
	}
}
