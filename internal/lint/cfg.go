package lint

import (
	"go/ast"
	"go/token"
)

// CFG is an intra-procedural control-flow graph over one function body.
// Blocks hold statements in execution order; edges are possible successors.
// The graph is syntactic — it models Go's structured control flow (if, for,
// range, switch, select, return, break/continue with labels, fallthrough,
// panic) and deliberately over-approximates the rest: a goto or an
// unrecognized terminator is given an edge to Exit, so "Exit is unreachable"
// is a sound claim wherever the builder reports it.
//
// goroleak consumes it for termination analysis (a goroutine whose CFG never
// reaches Exit and blocks on no channel can only leak); it is exported
// within the package for future flow-sensitive rules.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
}

// CFGBlock is one basic block: a run of statements with a common set of
// successor blocks.
type CFGBlock struct {
	Index int
	Nodes []ast.Node
	Succs []*CFGBlock
}

// ExitReachable reports whether any path from Entry reaches Exit — i.e.
// whether the function can ever return normally. Panics and gotos count as
// reaching Exit (over-approximation; see the type comment).
func (c *CFG) ExitReachable() bool {
	seen := make([]bool, len(c.Blocks))
	var dfs func(b *CFGBlock) bool
	dfs = func(b *CFGBlock) bool {
		if b == c.Exit {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(c.Entry)
}

// cfgBuilder threads the under-construction graph through the statement
// walk. cur is the block new statements append to; a nil-successor block
// whose construction ended in a terminator keeps whatever edges the
// terminator installed.
type cfgBuilder struct {
	cfg *CFG
	cur *CFGBlock
	// scopes stacks the enclosing breakable/continuable constructs, innermost
	// last, for break/continue (optionally labeled) resolution.
	scopes []cfgScope
}

type cfgScope struct {
	label      string
	breakTo    *CFGBlock
	continueTo *CFGBlock // nil for switch/select scopes
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmts(body.List, "")
	// Falling off the end of the body returns.
	b.edge(b.cur, c.Exit)
	return c
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump terminates the current block with an edge to target and switches to a
// fresh, unreachable block for any (dead) statements that follow.
func (b *cfgBuilder) jump(target *CFGBlock) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmts(list []ast.Stmt, label string) {
	for i, s := range list {
		// Only the statement a label is directly attached to may consume it.
		if i > 0 {
			label = ""
		}
		b.stmt(s, label)
	}
}

// findScope resolves a break/continue target. Empty label means innermost
// applicable scope; continue skips non-loop scopes.
func (b *cfgBuilder) findScope(label string, isContinue bool) *cfgScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if isContinue && sc.continueTo == nil {
			continue
		}
		if label == "" || sc.label == label {
			return sc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List, "")

	case *ast.LabeledStmt:
		b.stmt(st.Stmt, st.Label.Name)

	case *ast.IfStmt:
		if st.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, st.Cond)
		cond := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmts(st.Body.List, "")
		b.edge(b.cur, after)
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(st.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if st.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := head
		if st.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, st.Post)
			b.edge(post, head)
		}
		b.edge(b.cur, head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
			b.edge(head, after) // condition false exits the loop
		}
		// A `for {}` with no condition has no head→after edge: the only way
		// out is break/return inside the body.
		body := b.newBlock()
		b.edge(head, body)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmts(st.Body.List, "")
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.edge(b.cur, post)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Nodes = append(head.Nodes, st.X)
		after := b.newBlock()
		b.edge(b.cur, head)
		// Ranges terminate (a channel range on close), so the head always
		// has the exit edge.
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmts(st.Body.List, "")
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var clauses []ast.Stmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			init = sw.Init
			if sw.Tag != nil {
				b.cur.Nodes = append(b.cur.Nodes, sw.Tag)
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			init = sw.Init
			b.cur.Nodes = append(b.cur.Nodes, sw.Assign)
			clauses = sw.Body.List
		}
		if init != nil {
			b.cur.Nodes = append(b.cur.Nodes, init)
		}
		entry := b.cur
		after := b.newBlock()
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
		hasDefault := false
		// Build case blocks first so fallthrough can target the next one.
		caseBlocks := make([]*CFGBlock, len(clauses))
		for i := range clauses {
			caseBlocks[i] = b.newBlock()
		}
		for i, cl := range clauses {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			b.edge(entry, caseBlocks[i])
			b.cur = caseBlocks[i]
			var next *CFGBlock
			if i+1 < len(caseBlocks) {
				next = caseBlocks[i+1]
			}
			b.caseBody(cc.Body, after, next)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		if !hasDefault {
			b.edge(entry, after) // no case matched
		}
		b.cur = after

	case *ast.SelectStmt:
		entry := b.cur
		after := b.newBlock()
		if len(st.Body.List) == 0 {
			// select{} blocks forever: no successors, Exit unreachable.
			b.cur = b.newBlock()
			return
		}
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(entry, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.cur.Nodes = append(b.cur.Nodes, cc.Comm)
			}
			b.stmts(cc.Body, "")
			b.edge(b.cur, after)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if sc := b.findScope(labelName(st.Label), false); sc != nil {
				b.jump(sc.breakTo)
			} else {
				b.jump(b.cfg.Exit)
			}
		case token.CONTINUE:
			if sc := b.findScope(labelName(st.Label), true); sc != nil {
				b.jump(sc.continueTo)
			} else {
				b.jump(b.cfg.Exit)
			}
		case token.GOTO:
			// Unstructured; over-approximate as an exit so reachability
			// claims stay sound.
			b.jump(b.cfg.Exit)
		case token.FALLTHROUGH:
			// Handled in caseBody; a stray one is ignored.
		}

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		if isPanicCall(st.X) {
			// panic unwinds out of the function: treat as exit (sound for
			// "can this goroutine terminate").
			b.jump(b.cfg.Exit)
		}

	default:
		// Declarations, assignments, sends, defers, go statements: straight
		// line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// caseBody builds one switch-case body, wiring its end to after (or to the
// next case block on fallthrough).
func (b *cfgBuilder) caseBody(body []ast.Stmt, after, next *CFGBlock) {
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if next != nil {
				b.jump(next)
			} else {
				b.jump(after)
			}
			return
		}
		b.stmt(s, "")
	}
	b.edge(b.cur, after)
	b.cur = b.newBlock()
}

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

// isPanicCall reports whether the expression is a direct call to the
// predeclared panic. Purely syntactic: a local function named panic would be
// misclassified, which only widens reachability (safe direction).
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
