package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable rendering of one Finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column,omitempty"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// WriteJSON renders findings as a JSON array, one object per finding, in the
// driver's sorted order.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 document structure — the minimal subset GitHub code scanning
// and SARIF viewers consume. Field order follows the struct order below so
// encoded output is deterministic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log with a single run. The
// rule metadata covers the full analyzer suite plus the pseudo-rules, so a
// clean run still publishes the rule catalogue; file URIs are the loader's
// module-root-relative slash paths under the %SRCROOT% base.
func WriteSARIF(w io.Writer, findings []Finding) error {
	driver := sarifDriver{Name: "toposhotlint"}
	for _, name := range AnalyzerNames() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               name,
			ShortDescription: sarifText{Text: ByName(name).Doc},
		})
	}
	driver.Rules = append(driver.Rules,
		sarifRule{ID: TypecheckRule, ShortDescription: sarifText{
			Text: "the package does not parse or type-check; analysis ran on partial information"}},
		sarifRule{ID: StaleIgnoreRule, ShortDescription: sarifText{
			Text: "a //lint:ignore directive suppresses nothing and has outlived the code it excused"}},
	)

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       f.Pos.Filename,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
