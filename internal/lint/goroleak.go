package lint

import (
	"go/ast"
	"go/types"
)

var analyzerGoroLeak = &Analyzer{
	Name:       "goroleak",
	Doc:        "goroutines spawned in the live-node, runner, and daemon packages must have a reachable exit path; a leaked goroutine is unbounded memory under daemon traffic",
	RunProgram: runGoroLeak,
}

// goroleakScope lists the packages whose goroutines outlive a single
// simulation run: the live measurement node, the worker pool, and the
// long-running daemon. Simulation code is single-threaded by design and out
// of scope.
var goroleakScope = []string{
	modulePrefix + "/internal/node",
	modulePrefix + "/internal/runner",
	modulePrefix + "/cmd/toposhotd",
}

// runGoroLeak inspects every go statement in the scoped packages and builds
// the CFG of the spawned body (a function literal, or the declaration a
// named call resolves to through the call graph). A goroutine whose CFG can
// never reach Exit — no return, no break out of its loop, no close-signal
// range, no done-channel select arm that leaves — runs forever by
// construction and is reported.
//
// The check is intra-procedural and conservative in the non-reporting
// direction: the CFG treats panic and goto as reaching Exit, and a body
// whose exit depends on a condition that is never true still counts as
// reachable. Test files are exempt — a test goroutine's lifetime is bounded
// by the test process.
func runGoroLeak(prog *Program) []Finding {
	var findings []Finding
	cg := prog.CallGraph()
	for _, pkg := range prog.Packages {
		if !pathIn(pkg.ScopePath(), goroleakScope...) || pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			if pkg.IsTestFile(file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, name := spawnedBody(pkg, cg, g.Call)
				if body == nil {
					return true
				}
				if !BuildCFG(body).ExitReachable() {
					findings = append(findings, report(pkg, g, "goroleak",
						"goroutine "+name+" has no reachable exit path; add a done/cancel signal it can return on"))
				}
				return true
			})
		}
	}
	return findings
}

// spawnedBody resolves the body a go statement executes, and a display name
// for it. Calls that leave the module (stdlib, function values) resolve to
// nil and are not checked.
func spawnedBody(pkg *Package, cg *CallGraph, call *ast.CallExpr) (*ast.BlockStmt, string) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, "func literal"
	}
	obj := calleeObject(pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, ""
	}
	if node := cg.Node(fn); node != nil {
		return node.Decl.Body, fn.Name()
	}
	return nil, ""
}
