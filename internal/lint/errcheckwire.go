package lint

import (
	"go/ast"
	"go/types"
)

var analyzerErrcheckWire = &Analyzer{
	Name: "errcheck-wire",
	Doc:  "errors from internal/rlp and internal/wire encode/decode and net.Conn deadline/write calls must not be discarded",
	Run:  runErrcheckWire,
}

// errcheckPkgs are the protocol packages whose error returns carry isolation
// violations (a swallowed decode error means a measurement silently used a
// corrupt frame).
var errcheckPkgs = []string{
	modulePrefix + "/internal/rlp",
	modulePrefix + "/internal/wire",
}

// netCheckedMethods are net methods whose errors must be inspected: a failed
// deadline arm or short write turns into an unbounded stall or a half-frame.
var netCheckedMethods = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"Write": true,
}

func runErrcheckWire(pkg *Package) []Finding {
	var findings []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if name, hit := errcheckTarget(pkg, call); hit {
						findings = append(findings, report(pkg, call, "errcheck-wire",
							"error from "+name+" discarded; handle or propagate it"))
					}
				}
			case *ast.GoStmt:
				if name, hit := errcheckTarget(pkg, s.Call); hit {
					findings = append(findings, report(pkg, s.Call, "errcheck-wire",
						"error from "+name+" discarded by go statement; call it from a function that checks the error"))
				}
			case *ast.DeferStmt:
				if name, hit := errcheckTarget(pkg, s.Call); hit {
					findings = append(findings, report(pkg, s.Call, "errcheck-wire",
						"error from "+name+" discarded by defer; wrap it in a closure that checks the error"))
				}
			case *ast.AssignStmt:
				findings = append(findings, blankedErrors(pkg, s)...)
			}
			return true
		})
	}
	return findings
}

// blankedErrors flags assignments that bind a checked call's error result to
// the blank identifier, e.g. `_ = conn.SetReadDeadline(...)` or
// `it, _ := rlp.Decode(buf)`.
func blankedErrors(pkg *Package, asg *ast.AssignStmt) []Finding {
	var findings []Finding
	// Multi-result form: one call on the right, results spread on the left.
	if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		name, hit := errcheckTarget(pkg, call)
		if !hit {
			return nil
		}
		// The error is the final result by convention (verified by
		// errcheckTarget); only its slot matters.
		if isBlank(asg.Lhs[len(asg.Lhs)-1]) {
			findings = append(findings, report(pkg, call, "errcheck-wire",
				"error from "+name+" assigned to _; handle or propagate it"))
		}
		return findings
	}
	// Parallel form: `_ = call` (possibly several per statement).
	for i, rhs := range asg.Rhs {
		if i >= len(asg.Lhs) || !isBlank(asg.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if name, hit := errcheckTarget(pkg, call); hit {
			findings = append(findings, report(pkg, call, "errcheck-wire",
				"error from "+name+" assigned to _; handle or propagate it"))
		}
	}
	return findings
}

// errcheckTarget reports whether a call is one whose error result this rule
// tracks, returning a display name for the callee.
func errcheckTarget(pkg *Package, call *ast.CallExpr) (string, bool) {
	obj := calleeObject(pkg.Info, call)
	if obj == nil || !errorReturning(pkg.Info, call) {
		return "", false
	}
	path := objectPkgPath(obj)
	if pathIn(path, errcheckPkgs...) {
		// Findings inside the protocol packages themselves are exempt:
		// encode internals legitimately thread partial results around.
		if pathIn(pkg.ScopePath(), errcheckPkgs...) {
			return "", false
		}
		return lastSegment(path) + "." + obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok && path == "net" {
		if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() != nil && netCheckedMethods[fn.Name()] {
			return "net " + fn.Name(), true
		}
	}
	return "", false
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
