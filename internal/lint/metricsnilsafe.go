package lint

import (
	"go/ast"
	"go/token"
)

var analyzerMetricsNilsafe = &Analyzer{
	Name: "metrics-nilsafe",
	Doc:  "internal/metrics instruments are nil-safe; never nil-compare or dereference them after lookup",
	Run:  runMetricsNilsafe,
}

// metricsPkg is the instrumentation package whose instrument types carry
// nil-safe methods. The Registry type is deliberately not an instrument:
// nil-checking a registry is how call sites decide whether metrics are on.
var metricsPkg = modulePrefix + "/internal/metrics"

var instrumentTypes = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

func runMetricsNilsafe(pkg *Package) []Finding {
	if pkg.ScopePath() == metricsPkg {
		return nil // the package that implements nil-safety may inspect nil
	}
	var findings []Finding
	info := pkg.Info
	isInstrument := func(e ast.Expr) (string, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return "", false
		}
		n := recvNamed(tv.Type)
		if n == nil || n.Obj().Pkg() == nil {
			return "", false
		}
		if n.Obj().Pkg().Path() == metricsPkg && instrumentTypes[n.Obj().Name()] {
			return n.Obj().Name(), true
		}
		return "", false
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				var other ast.Expr
				if isNil(info, x.X) {
					other = x.Y
				} else if isNil(info, x.Y) {
					other = x.X
				} else {
					return true
				}
				if name, ok := isInstrument(other); ok {
					findings = append(findings, report(pkg, x, "metrics-nilsafe",
						"nil comparison of metrics."+name+"; instrument methods are nil-safe, call them unconditionally"))
				}
			case *ast.StarExpr:
				// A StarExpr in value position is a dereference; in type
				// position it is pointer syntax — the latter has IsType set.
				if tv, ok := info.Types[x]; ok && tv.IsType() {
					return true
				}
				if name, ok := isInstrument(x.X); ok {
					findings = append(findings, report(pkg, x, "metrics-nilsafe",
						"dereference of metrics."+name+"; a nil instrument would panic — use its methods instead"))
				}
			}
			return true
		})
	}
	return findings
}
