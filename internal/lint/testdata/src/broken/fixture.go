// Package broken does not type-check: the driver must degrade to a
// typecheck report, not panic.
package broken

func addOne(n int) int {
	return n + undefinedSymbol
}
