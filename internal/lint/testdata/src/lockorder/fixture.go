// Package fixture exercises the lockorder analyzer: cross-type acquisition
// cycles (direct and through a call), plus clean patterns that must stay
// silent — a consistent global order and hand-over-hand locking over
// instances of one type.
package fixture

import "sync"

type A struct {
	mu sync.Mutex
	b  *B
	n  int
}

type B struct {
	mu sync.Mutex
	a  *A
	n  int
}

// lockAB acquires A.mu then B.mu.
func (a *A) lockAB() {
	a.mu.Lock()
	a.b.mu.Lock() // want: cycle with lockBA's reverse order
	a.b.n++
	a.b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA acquires B.mu then A.mu — the reverse order; together with lockAB
// this is a deadlock waiting for two goroutines to collide.
func (b *B) lockBA() {
	b.mu.Lock()
	b.a.mu.Lock() // want: cycle with lockAB's order
	b.a.n++
	b.a.mu.Unlock()
	b.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

// withLock calls into D while holding C.mu; D.poke acquires D.mu, so the
// call creates the interprocedural edge C.mu -> D.mu.
func (c *C) withLock(d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.poke() // want: completes the cycle against reverse's D.mu -> C.mu
	c.n++
}

func (d *D) poke() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
}

// reverse acquires D.mu then C.mu directly.
func (d *D) reverse(c *C) {
	d.mu.Lock()
	c.mu.Lock() // want: cycle with the withLock -> poke chain
	c.n++
	d.n++
	c.mu.Unlock()
	d.mu.Unlock()
}

// Ordered always takes first before second: a consistent order, no cycle.
type Ordered struct {
	first  sync.Mutex
	second sync.Mutex
	n      int
}

func (o *Ordered) both() {
	o.first.Lock()
	o.second.Lock()
	o.n++
	o.second.Unlock()
	o.first.Unlock()
}

// chain locks two instances of the same type nested — the same abstract
// lock. The analyzer cannot see instance-level order, so this self-edge is
// deliberately not reported.
func chain(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	x.n, y.n = y.n, x.n
	y.mu.Unlock()
	x.mu.Unlock()
}
