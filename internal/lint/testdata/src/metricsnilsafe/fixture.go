// Package fixture exercises the metrics-nilsafe analyzer: instruments are
// nil-safe and must not be nil-compared or dereferenced.
package fixture

import "toposhot/internal/metrics"

// guarded nil-checks an instrument before use — the guard the nil-safe
// methods exist to delete.
func guarded(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// deref copies through the pointer; a nil instrument panics here.
func deref(g *metrics.Gauge) metrics.Gauge {
	return *g
}

// direct is the sanctioned shape: call the methods unconditionally. Registry
// nil checks stay legal — that is how call sites detect disabled metrics.
func direct(r *metrics.Registry, c *metrics.Counter, h *metrics.Histogram) {
	if r == nil {
		return
	}
	c.Inc()
	h.Observe(1)
}
