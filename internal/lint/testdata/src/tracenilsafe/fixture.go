// Package fixture exercises the trace-nilsafe and trace-spanname analyzers:
// recorders are nil-safe (no guards, no dereferences) and span names must be
// compile-time constants.
package fixture

import (
	"fmt"

	"toposhot/internal/trace"
)

const spanRow = "row"

// guarded wraps pure recording in the nil guard the nil-safe methods exist
// to delete.
func guarded(tr *trace.Tracer) {
	if tr != nil {
		sp := tr.StartSpan(spanRow)
		defer sp.End()
		tr.Event("tick")
	}
}

// deref copies through the pointer; a nil recorder panics here.
func deref(tr *trace.Tracer) trace.Tracer {
	return *tr
}

// dynamicName builds a span name at runtime, defeating constant-name
// aggregation.
func dynamicName(tr *trace.Tracer, i int) {
	sp := tr.StartSpan(fmt.Sprintf("row-%d", i))
	tr.Event("msg" + fmt.Sprint(i))
	sp.End()
}

// sanctioned shapes: unconditional recording with constant names, nil
// guards around non-recording work (wiring), and nil checks that skip
// construction.
func sanctioned(tr *trace.Tracer, wire func(*trace.Tracer)) {
	sp := tr.StartSpan(spanRow, trace.Int("i", 1))
	tr.Event("literal-is-constant")
	sp.End()
	if tr != nil {
		wire(tr)
	}
	if tr == nil {
		return
	}
}
