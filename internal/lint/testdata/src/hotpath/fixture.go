// Package fixture exercises the nodeterminism hot-path rules. The test loads
// it twice: as toposhot/internal/ethsim/fixture, where container/heap is
// banned and map iteration is flagged only inside delivery-path functions,
// and as toposhot/internal/sim/fixture, where map iteration is banned in
// every function.
package fixture

import (
	"container/heap"
	"sort"
)

type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// useHeap exists so the banned import is also used.
func useHeap(h *intHeap) { heap.Init(h) }

// flush is a delivery-path name: any map iteration inside it is flagged.
func flush(pending map[int]int) int {
	total := 0
	for _, v := range pending {
		total += v
	}
	return total
}

// snapshot is not on the delivery path: under the ethsim scope its
// collect-then-sort map range stays sanctioned; under the sim scope the
// whole package is hot path and it is flagged anyway.
func snapshot(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// route ranges over a slice: delivery-path functions may iterate slices.
func route(order []int) int {
	total := 0
	for _, v := range order {
		total += v
	}
	return total
}
