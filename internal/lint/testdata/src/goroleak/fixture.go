// Package fixture exercises the goroleak analyzer: goroutines with no
// reachable exit path fire; goroutines that can return on a done signal, a
// closed channel, or an error stay silent.
package fixture

type server struct {
	done chan struct{}
	work chan int
	out  []int
}

func sink(int) {}

// spinForever loops with no way out: leak.
func (s *server) spinForever() {
	for {
		sink(1)
	}
}

// drainForever receives forever; even channel close only yields zero values
// to a bare receive, and nothing ever returns: leak.
func (s *server) drainForever() {
	for {
		select {
		case v := <-s.work:
			sink(v)
		}
	}
}

// untilDone returns when the done channel is signalled: clean.
func (s *server) untilDone() {
	for {
		select {
		case v := <-s.work:
			sink(v)
		case <-s.done:
			return
		}
	}
}

// untilClosed ranges over the work channel, exiting when it is closed: clean.
func (s *server) untilClosed() {
	for v := range s.work {
		sink(v)
	}
}

// oneShot runs to completion: clean.
func (s *server) oneShot(v int) {
	sink(v)
}

func (s *server) start() {
	go s.spinForever() // want: no reachable exit path
	go func() {        // want: no reachable exit path
		for {
			sink(2)
		}
	}()
	go s.drainForever() // want: no reachable exit path
	go s.untilDone()
	go s.untilClosed()
	go s.oneShot(3)
	go func() {
		for v := range s.work {
			sink(v)
		}
	}()
}
