// Package fixture exercises the stale-ignore audit: a directive that still
// suppresses a finding is fine; a directive whose finding is gone is
// reported under the stale-ignore pseudo-rule.
package fixture

import "time"

// live is suppressed and therefore used: no stale report.
func live() time.Time {
	//lint:ignore nodeterminism fixture exercises a used directive
	return time.Now()
}

// gone once guarded a time.Now call that has since been removed; the
// directive outlived the code it excused.
func gone() time.Time {
	//lint:ignore nodeterminism the violation this excused was deleted
	return time.Time{}
}
