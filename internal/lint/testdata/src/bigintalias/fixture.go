// Package fixture exercises the bigint-alias analyzer: caller-provided
// *big.Int values stored or mutated instead of copied.
package fixture

import "math/big"

type order struct {
	price *big.Int
}

// setPrice stores the caller's pointer; a later mutation by the caller
// rewrites the stored price.
func (o *order) setPrice(p *big.Int) {
	o.price = p
}

// newOrder aliases through a composite literal.
func newOrder(p *big.Int) *order {
	return &order{price: p}
}

// bump mutates the caller's value in place.
func bump(p *big.Int) *big.Int {
	return p.Add(p, big.NewInt(1))
}

// newOrderCopy is the sanctioned shape: a defensive copy.
func newOrderCopy(p *big.Int) *order {
	return &order{price: new(big.Int).Set(p)}
}
