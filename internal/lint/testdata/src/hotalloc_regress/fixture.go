// Package regress models ethsim's gossip dispatch with the pre-overhaul
// shape the hotalloc rule exists to keep out: a closure captured per message
// to schedule its delivery. Seeding this into the dispatch path must fire.
package regress

type engine struct{ t float64 }

func (e *engine) After(d float64, fn func()) {}

type msg struct{ to, id uint64 }

type network struct {
	eng  *engine
	msgs []msg
}

func (n *network) deliverTxs(m msg) { _ = m }

// route schedules delivery with a closure per message — one allocation per
// gossip hop that the Handler+arg API avoids.
func (n *network) route(m msg) {
	n.eng.After(0.05, func() { n.deliverTxs(m) }) // want: closure per message
}
