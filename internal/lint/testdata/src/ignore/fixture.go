// Package fixture exercises //lint:ignore handling. Loaded under a
// simulation-scope import path so time.Now is a nodeterminism finding.
package fixture

import "time"

// suppressedAbove carries a directive on the line above the finding.
func suppressedAbove() time.Time {
	//lint:ignore nodeterminism fixture demonstrates suppression
	return time.Now()
}

// suppressedTrailing carries the directive on the finding's own line.
func suppressedTrailing() time.Time {
	return time.Now() //lint:ignore nodeterminism trailing placement also suppresses
}

// unknownRule names a rule that does not exist: the directive is itself an
// error and suppresses nothing.
func unknownRule() time.Time {
	//lint:ignore nosuchrule bogus
	return time.Now()
}

// missingReason omits the mandatory reason: malformed, suppresses nothing.
func missingReason() time.Time {
	//lint:ignore nodeterminism
	return time.Now()
}
