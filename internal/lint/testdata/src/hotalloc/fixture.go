// Package fixture exercises the hotalloc analyzer under an ethsim-claimed
// import path: every banned allocation in a delivery-path function fires,
// the pooled idioms stay silent, and the same constructs in a non-hot
// function are out of scope.
package fixture

type handler interface{ HandleEvent(arg uint64) }

type engine struct{ t float64 }

func (e *engine) After(d float64, fn func())                  {}
func (e *engine) AfterHandler(d float64, h handler, a uint64) {}

type message struct{ id uint64 }

type network struct {
	eng     *engine
	outQ    []message
	scratch []uint64
	seen    map[uint64]bool
}

func (n *network) HandleEvent(arg uint64) {}

func deliver(*network) {}

func box(v interface{}) { _ = v }

// propagate is on the delivery path; each banned construct fires.
func (n *network) propagate(m message) {
	n.eng.After(0.1, func() { deliver(n) }) // want: closure
	tags := []uint64{m.id}                  // want: slice literal
	seen := map[uint64]bool{}               // want: map literal
	var ids []uint64
	ids = append(ids, m.id)          // want: growing append
	box(m)                           // want: message boxed by value
	box(&m)                          // clean: pointer-shaped
	n.eng.AfterHandler(0.2, n, m.id) // clean: pointer into interface, uint64 arg
	_, _, _ = tags, seen, ids
}

// flush is on the delivery path but uses only the pooled idioms: clean.
func (n *network) flush() {
	out := n.scratch[:0]
	for i := range n.outQ {
		out = append(out, n.outQ[i].id)
	}
	n.scratch = out
	n.outQ = append(n.outQ, message{})
	var want []uint64
	if len(out) > 0 {
		want = n.scratch[:0] // conditional pooled reslice clears the mark
	}
	want = append(want, 1)
	_ = want
}

// setup is not a hot-path function: the same constructs stay silent.
func setup() *network {
	n := &network{seen: map[uint64]bool{}}
	ids := []uint64{1, 2}
	fn := func() { deliver(n) }
	fn()
	box(message{})
	_ = ids
	return n
}
