// Package fixture exercises the errcheck-wire analyzer: discarded errors
// from the protocol packages and from net deadline/write calls.
package fixture

import (
	"net"
	"time"

	"toposhot/internal/rlp"
	"toposhot/internal/wire"
)

// dropDecode throws the decode result away entirely.
func dropDecode(b []byte) {
	rlp.Decode(b)
}

// blankDecode keeps the item but blanks the error.
func blankDecode(b []byte) rlp.Item {
	it, _ := rlp.Decode(b)
	return it
}

// blankDeadline ignores a failed deadline arm — the unbounded-stall bug.
func blankDeadline(c net.Conn) {
	_ = c.SetReadDeadline(time.Time{})
}

// goWrite fires a frame into a goroutine nobody checks.
func goWrite(c net.Conn, m wire.Msg) {
	go wire.WriteMsg(c, m)
}

// deferWrite defers a frame write whose error vanishes.
func deferWrite(c net.Conn, m wire.Msg) {
	defer wire.WriteMsg(c, m)
}

// checked is the sanctioned shape.
func checked(b []byte) error {
	_, err := rlp.Decode(b)
	return err
}
