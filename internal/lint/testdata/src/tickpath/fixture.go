// Package fixture exercises the O(Δ) tick-path bans. The named dyn*/trk*
// functions run once per tracked change on every tracker tick: map iteration
// and allocations inside them must fire; the pooled-reslice idiom and the
// batch fallback (dynRebuild) must stay silent. Loaded under both owning
// scopes: as toposhot/internal/graph/fixture only the tick-path rules apply;
// as toposhot/internal/tracker/fixture the package is additionally in the
// nodeterminism simulation scope, so the order-dependent float accumulation
// is flagged too.
package fixture

type Dynamic struct {
	scratch []int32
	index   map[int32]int32
	weight  map[int32]float64
}

func sink(v interface{}) {}

// dynApplyAdd is on the tick path: every allocation and map walk below must
// be flagged; the pooled reslice must not.
func (d *Dynamic) dynApplyAdd(su, sv int32) {
	undo := func() {} // closure per change
	undo()
	seen := map[int32]bool{su: true} // map literal per change
	_ = seen
	pair := []int32{su, sv} // slice literal per change
	_ = pair
	var grown []int32
	grown = append(grown, su) // growing append on a fresh local
	_ = grown
	queue := d.scratch[:0] // pooled reslice: silent
	queue = append(queue, sv)
	_ = queue
	sink(su) // int32 boxed into an interface argument
	var sum float64
	for k := range d.index { // map iteration on the tick path
		sum += d.weight[k] // order-dependent float sum (simulation scope only)
	}
	_ = sum
}

// trkPlan is on the tick path under the tracker package.
func (d *Dynamic) trkPlan() []int32 {
	var plan []int32
	plan = append(plan, 0) // growing append on a fresh local
	return plan
}

// dynRebuild is the O(V+E) disconnect fallback and deliberately off the
// tick path: allocations and map walks here are allowed.
func (d *Dynamic) dynRebuild() {
	fresh := make(map[int32]int32, len(d.index))
	for k, v := range d.index {
		fresh[k] = v
	}
	d.index = fresh
}
