// Package fixture exercises the nodeterminism analyzer. The test loads it
// under the claimed import path toposhot/internal/core/fixture so the
// simulation-scope checks apply without the stricter hot-path rules that
// cover internal/sim (see the hotpath fixture for those).
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// wallClock reads the wall clock in a simulation path.
func wallClock() time.Time {
	return time.Now()
}

// globalRand draws from the shared global source.
func globalRand() int {
	return rand.Intn(10)
}

// seeded is the sanctioned pattern: an explicit seeded source.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// unsortedKeys leaks map iteration order into its result.
func unsortedKeys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sortedKeys is the sanctioned pattern: collect, then sort.
func sortedKeys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// floatSum accumulates floats in map iteration order; addition order changes
// the rounding.
func floatSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
