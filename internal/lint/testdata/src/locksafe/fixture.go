// Package fixture exercises the locksafe analyzer: blocking operations and
// callback invocations while a sync mutex is held.
package fixture

import (
	"net"
	"sync"

	"toposhot/internal/wire"
)

type hub struct {
	mu   sync.Mutex
	subs []func(int)
	ch   chan int
	conn net.Conn
}

// publishLocked performs every forbidden operation under the lock.
func (h *hub) publishLocked(v int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ch <- v
	for _, cb := range h.subs {
		cb(v)
	}
	if _, err := h.conn.Write([]byte{1}); err != nil {
		return err
	}
	return wire.WriteMsg(h.conn, wire.Msg{Code: wire.CodeDisconnect})
}

// publish is the sanctioned shape: snapshot under the lock, operate outside.
func (h *hub) publish(v int) error {
	h.mu.Lock()
	subs := append([]func(int){}, h.subs...)
	h.mu.Unlock()
	h.ch <- v
	for _, cb := range subs {
		cb(v)
	}
	return wire.WriteMsg(h.conn, wire.Msg{Code: wire.CodeDisconnect})
}

// earlyUnlock releases on a branch; the operations after the branch are
// still under the lock and must be flagged, the ones inside are not.
func (h *hub) earlyUnlock(v int, empty bool) {
	h.mu.Lock()
	if empty {
		h.mu.Unlock()
		h.ch <- v
		return
	}
	h.ch <- v
	h.mu.Unlock()
}
