// Package lint implements toposhotlint, the repository's project-specific
// static-analysis suite. It enforces invariants the compiler cannot see but
// the paper's measurement methodology depends on:
//
//   - nodeterminism: simulation packages must be reproducible — no wall
//     clock, no global math/rand, no results that depend on map iteration
//     order (same seed ⇒ same topology inference).
//   - locksafe: no channel send, network write, or callback invocation while
//     a sync.Mutex/RWMutex is held — the head-of-line-blocking shape that
//     stalled live-node peers before PR 1.
//   - lockorder: the module-wide mutex acquisition-order graph must be
//     acyclic — a lock-order cycle spanning packages is a deadlock -race
//     can only catch if both threads actually collide during a run.
//   - goroleak: goroutines spawned in the live-node, runner, and daemon
//     packages must have a reachable exit path (return, channel/select
//     signal) — a leaked goroutine is unbounded memory under daemon traffic.
//   - hotalloc: the scheduling/gossip hot paths must stay allocation-free —
//     no closure creation, map/slice literals, unpreallocated append growth,
//     or interface boxing where PR 4 fought allocations down to 455/op.
//   - errcheck-wire: results of internal/rlp and internal/wire
//     encode/decode calls and net.Conn deadline/write calls must not be
//     discarded; a swallowed wire error silently breaks §5.2 isolation.
//   - bigint-alias: caller-provided *big.Int values must not be stored or
//     mutated; an aliased gas price corrupts the replacement predicate
//     (1+R)·Y.
//   - metrics-nilsafe: internal/metrics instruments are nil-safe by design
//     and must be used through their methods, never nil-compared or
//     dereferenced after registry lookup.
//
// The driver is dependency-free: all module packages are loaded into one
// Program with go/parser, type-checked with go/types against a go/importer
// "source" importer (test files included unless opted out), and analyzed in
// parallel over internal/runner's worker pool with byte-identical ordered
// output. Findings render as
//
//	file:line: [rule-id] message
//
// (SARIF and JSON renderings are available for CI), and can be suppressed in
// place with
//
//	//lint:ignore rule-id reason
//
// on the offending line or the line directly above it. The reason is
// mandatory; an ignore directive naming an unknown rule is itself an error,
// and a directive that no longer suppresses anything is reported as stale.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical file:line: [rule] message form.
// File paths are kept as produced by the loader (module-relative).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule. Exactly one of Run and RunProgram is set:
// Run is a per-package rule applied independently (and concurrently) to each
// package; RunProgram is an interprocedural rule that sees the whole loaded
// module at once (call graph, cross-package lock orders).
type Analyzer struct {
	// Name is the rule id used in reports and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the rule's findings for one package.
	Run func(p *Package) []Finding
	// RunProgram reports the rule's findings for the whole program.
	RunProgram func(prog *Program) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerNoDeterminism,
		analyzerLockSafe,
		analyzerErrcheckWire,
		analyzerBigintAlias,
		analyzerMetricsNilsafe,
		analyzerTraceNilsafe,
		analyzerTraceSpanname,
		analyzerLockOrder,
		analyzerGoroLeak,
		analyzerHotAlloc,
	}
}

// AnalyzerNames returns the known rule ids, sorted.
func AnalyzerNames() []string {
	names := make([]string, 0, len(Analyzers()))
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// ByName returns the analyzer with the given rule id, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Options configures a Run.
type Options struct {
	// Dir is the working directory (the module root is discovered from it,
	// and package patterns resolve against it). Empty means the process
	// working directory.
	Dir string
	// Patterns are package patterns: "./..." (the default when empty),
	// "./dir/..." or "./dir".
	Patterns []string
	// Rules selects a subset of analyzers by name; empty means all. Unknown
	// names are rejected with an error.
	Rules []string
	// NoTests excludes _test.go files from the load. By default test files
	// are linted too: determinism bugs in test helpers (unseeded RNG,
	// map-order golden construction) corrupt goldens as surely as bugs in
	// the code under test.
	NoTests bool
	// Parallel is the analysis pool width; ≤ 0 means the process default
	// (runner.Parallelism()). Output is byte-identical at any width.
	Parallel int
}

// TypecheckRule is the pseudo-rule under which loader and type-check errors
// are reported. It cannot be selected or suppressed: a package that does not
// type-check cannot be trusted to lint clean.
const TypecheckRule = "typecheck"

// StaleIgnoreRule is the pseudo-rule under which unused //lint:ignore
// directives are reported. Like typecheck it cannot be selected or
// suppressed — a suppression must not be able to excuse itself.
const StaleIgnoreRule = "stale-ignore"

// Run loads the requested packages into one Program and applies the selected
// analyzers. Findings come back sorted by position; type-check and parse
// errors are reported as findings under the "typecheck" pseudo-rule rather
// than aborting the run, so a broken package degrades to a report, not a
// panic.
func Run(opts Options) ([]Finding, error) {
	analyzers, err := selectAnalyzers(opts.Rules)
	if err != nil {
		return nil, err
	}
	prog, err := LoadProgram(opts)
	if err != nil {
		return nil, err
	}
	return CheckProgram(prog, analyzers, opts.Parallel), nil
}

// selectAnalyzers resolves a -rules subset (empty means the full suite).
func selectAnalyzers(rules []string) ([]*Analyzer, error) {
	analyzers := Analyzers()
	if len(rules) == 0 {
		return analyzers, nil
	}
	analyzers = nil
	for _, name := range rules {
		a := ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(AnalyzerNames(), ", "))
		}
		analyzers = append(analyzers, a)
	}
	return analyzers, nil
}

// CheckPackage applies analyzers to one loaded package by wrapping it in a
// single-package program: type errors become typecheck findings, analyzer
// findings pass through the package's ignore directives, and malformed,
// unknown-rule, or stale directives are reported. Fixture tests use this.
func CheckPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	return CheckProgram(NewProgram(pkg), analyzers, 1)
}

// Format renders findings one per line — the golden-file format.
func Format(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// relPosition resolves a token.Pos to a position whose path is relative to
// the package's module root — never the process working directory — so
// findings and golden files are byte-identical no matter which subdirectory
// the linter is invoked from. Paths the loader already recorded as
// module-relative pass through; absolute paths (e.g. a type error positioned
// in a GOROOT source file) are made module-relative when they fall under the
// module root and kept absolute otherwise.
func relPosition(pkg *Package, pos token.Pos) token.Position {
	p := pkg.Fset.Position(pos)
	if filepath.IsAbs(p.Filename) && pkg.ModRoot != "" {
		if rel, err := filepath.Rel(pkg.ModRoot, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	p.Filename = filepath.ToSlash(p.Filename)
	return p
}
