// Package lint implements toposhotlint, the repository's project-specific
// static-analysis suite. It enforces invariants the compiler cannot see but
// the paper's measurement methodology depends on:
//
//   - nodeterminism: simulation packages must be reproducible — no wall
//     clock, no global math/rand, no results that depend on map iteration
//     order (same seed ⇒ same topology inference).
//   - locksafe: no channel send, network write, or callback invocation while
//     a sync.Mutex/RWMutex is held — the head-of-line-blocking shape that
//     stalled live-node peers before PR 1.
//   - errcheck-wire: results of internal/rlp and internal/wire
//     encode/decode calls and net.Conn deadline/write calls must not be
//     discarded; a swallowed wire error silently breaks §5.2 isolation.
//   - bigint-alias: caller-provided *big.Int values must not be stored or
//     mutated; an aliased gas price corrupts the replacement predicate
//     (1+R)·Y.
//   - metrics-nilsafe: internal/metrics instruments are nil-safe by design
//     and must be used through their methods, never nil-compared or
//     dereferenced after registry lookup.
//
// The driver is dependency-free: packages are loaded with go/parser and
// type-checked with go/types against a go/importer "source" importer, so the
// module keeps zero third-party dependencies. Findings render as
//
//	file:line: [rule-id] message
//
// and can be suppressed in place with
//
//	//lint:ignore rule-id reason
//
// on the offending line or the line directly above it. The reason is
// mandatory; an ignore directive naming an unknown rule is itself an error.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical file:line: [rule] message form.
// File paths are kept as produced by the loader (module-relative).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	// Name is the rule id used in reports and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the rule's findings for one package.
	Run func(p *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerNoDeterminism,
		analyzerLockSafe,
		analyzerErrcheckWire,
		analyzerBigintAlias,
		analyzerMetricsNilsafe,
		analyzerTraceNilsafe,
		analyzerTraceSpanname,
	}
}

// AnalyzerNames returns the known rule ids, sorted.
func AnalyzerNames() []string {
	names := make([]string, 0, len(Analyzers()))
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// ByName returns the analyzer with the given rule id, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Options configures a Run.
type Options struct {
	// Dir is the working directory (the module root is discovered from it).
	// Empty means the process working directory.
	Dir string
	// Patterns are package patterns: "./..." (the default when empty),
	// "./dir/..." or "./dir".
	Patterns []string
	// Rules selects a subset of analyzers by name; empty means all. Unknown
	// names are rejected with an error.
	Rules []string
}

// TypecheckRule is the pseudo-rule under which loader and type-check errors
// are reported. It cannot be selected or suppressed: a package that does not
// type-check cannot be trusted to lint clean.
const TypecheckRule = "typecheck"

// Run loads the requested packages and applies the selected analyzers.
// Findings come back sorted by position; type-check and parse errors are
// reported as findings under the "typecheck" pseudo-rule rather than
// aborting the run, so a broken package degrades to a report, not a panic.
func Run(opts Options) ([]Finding, error) {
	analyzers := Analyzers()
	if len(opts.Rules) > 0 {
		analyzers = nil
		for _, name := range opts.Rules {
			a := ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(AnalyzerNames(), ", "))
			}
			analyzers = append(analyzers, a)
		}
	}

	ld, err := newLoader(opts.Dir)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for _, path := range paths {
		pkg, err := ld.loadModulePackage(path)
		if err != nil {
			// A package that cannot be loaded at all (unreadable dir, no Go
			// files) is an environment error, not a lint finding.
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		findings = append(findings, CheckPackage(pkg, analyzers)...)
	}
	sortFindings(findings)
	return findings, nil
}

// CheckPackage applies analyzers to one loaded package: type errors become
// typecheck findings, analyzer findings pass through the package's ignore
// directives, and malformed or unknown-rule directives are reported.
func CheckPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, te := range pkg.TypeErrors {
		findings = append(findings, Finding{
			Pos:  relPosition(pkg.Fset, te.Pos),
			Rule: TypecheckRule,
			Msg:  te.Msg,
		})
	}
	ignores, bad := collectIgnores(pkg)
	findings = append(findings, bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(pkg) {
			if ignores.matches(f) {
				continue
			}
			findings = append(findings, f)
		}
	}
	sortFindings(findings)
	return findings
}

// Format renders findings one per line — the golden-file format.
func Format(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// relPosition resolves a token.Pos to a position with a path relative to the
// current working directory when possible, keeping reports stable across
// machines.
func relPosition(fset *token.FileSet, pos token.Pos) token.Position {
	p := fset.Position(pos)
	if rel, err := filepath.Rel(".", p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		p.Filename = rel
	}
	return p
}
