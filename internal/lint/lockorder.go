package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

var analyzerLockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "the module-wide mutex acquisition-order graph must be acyclic; a cross-package lock-order cycle is a deadlock -race only catches when two threads actually collide",
	RunProgram: runLockOrder,
}

// lockAcq is one lock acquisition recorded during the per-function scan.
type lockAcq struct {
	key string
	pkg *Package
	pos ast.Node
}

// lockCall is a call made while locks were held.
type lockCall struct {
	held []string // sorted snapshot of held lock keys
	call *ast.CallExpr
	pkg  *Package
}

// lockSummary is one function's contribution to the order graph.
type lockSummary struct {
	// acquires are the locks this function acquires directly.
	acquires map[string]bool
	// edges are direct nested acquisitions: to was locked while from held.
	edges []lockOrderEdge
	// calls are the call sites executed under at least one held lock.
	calls []lockCall
}

// lockOrderEdge is one observed "from held when to acquired" pair with the
// site that witnessed it.
type lockOrderEdge struct {
	from, to string
	pkg      *Package
	site     ast.Node
}

// runLockOrder builds per-function acquisition summaries, propagates
// may-acquire sets over the call graph to a fixpoint, materializes the
// module-wide lock-order graph, and reports every acquisition edge that
// participates in a cycle.
//
// Lock identity is the abstract "declared lock", not the runtime instance:
// field locks key as pkg.Type.field, package-level locks as pkg.var, locals
// as pkg.func.name. Two instances of the same struct therefore share a key —
// and self-edges (same key acquired nested) are deliberately not reported,
// since hand-over-hand locking over sibling instances is legitimate under an
// instance-level order this abstraction cannot see. Calls made via go/defer
// statements do not order their locks after the caller's held set.
func runLockOrder(prog *Program) []Finding {
	cg := prog.CallGraph()

	summaries := make(map[*CGNode]*lockSummary)
	for _, n := range cg.Nodes() {
		summaries[n] = scanLockOrder(n)
	}

	// mayAcquire fixpoint: a function may acquire what it locks directly and
	// anything its callees may acquire.
	may := make(map[*CGNode]map[string]bool, len(summaries))
	for n, s := range summaries {
		set := make(map[string]bool, len(s.acquires))
		for k := range s.acquires {
			set[k] = true
		}
		may[n] = set
	}
	for changed := true; changed; {
		changed = false
		for _, n := range cg.Nodes() {
			set := may[n]
			for _, c := range n.Callees() {
				for k := range may[c] {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}

	// Materialize edges: direct nested acquisitions, plus held-set × callee
	// may-acquire at every call-under-lock.
	type edgeKey struct{ from, to string }
	edges := make(map[edgeKey]lockOrderEdge)
	addEdge := func(e lockOrderEdge) {
		if e.from == e.to {
			return
		}
		k := edgeKey{e.from, e.to}
		prev, ok := edges[k]
		if !ok || before(e, prev) {
			edges[k] = e
		}
	}
	for _, n := range cg.Nodes() {
		s := summaries[n]
		for _, e := range s.edges {
			addEdge(e)
		}
		for _, lc := range s.calls {
			for _, target := range cg.Resolve(lc.pkg, lc.call) {
				for to := range may[target] {
					for _, from := range lc.held {
						addEdge(lockOrderEdge{from: from, to: to, pkg: lc.pkg, site: lc.call})
					}
				}
			}
		}
	}

	// Cycle detection: an edge is part of a cycle iff its endpoints are in
	// the same strongly connected component.
	adj := make(map[string][]string)
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	scc := stronglyConnected(adj)

	var findings []Finding
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		cf, okF := scc[k.from]
		ct, okT := scc[k.to]
		if !okF || !okT || cf != ct {
			continue
		}
		members := sccMembers(scc, cf)
		e := edges[k]
		findings = append(findings, report(e.pkg, e.site, "lockorder",
			"acquires "+displayLock(k.to)+" while "+displayLock(k.from)+
				" is held, completing a lock-order cycle among "+members+
				"; pick one global acquisition order"))
	}
	return findings
}

// before orders two witnesses of the same edge so the reported site is
// deterministic regardless of summary iteration order.
func before(a, b lockOrderEdge) bool {
	pa := relPosition(a.pkg, a.site.Pos())
	pb := relPosition(b.pkg, b.site.Pos())
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Line < pb.Line
}

// displayLock strips the module prefix from a lock key for readable reports.
func displayLock(key string) string {
	return strings.TrimPrefix(key, modulePrefix+"/")
}

// sccMembers renders the sorted members of one component.
func sccMembers(scc map[string]int, comp int) string {
	var members []string
	for k, c := range scc {
		if c == comp {
			members = append(members, displayLock(k))
		}
	}
	sort.Strings(members)
	return strings.Join(members, ", ")
}

// stronglyConnected assigns a component id to every node that is in a
// non-trivial SCC or has a self-loop; nodes in trivial singleton components
// are omitted. Iterative Tarjan with deterministic root and neighbor order.
func stronglyConnected(adj map[string][]string) map[string]int {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)
	for _, tos := range adj {
		sort.Strings(tos)
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string]int)
	next, nComp := 0, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			// Only keep components that actually contain a cycle.
			if len(members) > 1 {
				for _, m := range members {
					comp[m] = nComp
				}
				nComp++
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return comp
}

// scanLockOrder walks one function body linearly, tracking the held set the
// way locksafe does (nested blocks copy the set; deferred unlocks keep the
// lock held), and records acquisitions, nested-acquisition edges, and calls
// made under a lock.
func scanLockOrder(n *CGNode) *lockSummary {
	s := &lockSummary{acquires: make(map[string]bool)}
	sc := &lockOrderScan{node: n, sum: s}
	sc.block(n.Decl.Body, map[string]bool{})
	return s
}

type lockOrderScan struct {
	node *CGNode
	sum  *lockSummary
}

func (ls *lockOrderScan) block(b *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range b.List {
		ls.stmt(stmt, held)
	}
}

func (ls *lockOrderScan) stmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, isLock, locks := ls.lockOp(call); isLock {
				if locks {
					ls.acquire(key, call, held)
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		ls.scan(s, held)
	case *ast.DeferStmt:
		if _, isLock, locks := ls.lockOp(s.Call); isLock && !locks {
			return // defer mu.Unlock(): held to function end, as recorded
		}
		// Deferred and spawned calls run outside this acquisition context;
		// their own locks are not ordered after the held set.
	case *ast.GoStmt:
	case *ast.BlockStmt:
		ls.block(s, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		ls.scan(s.Cond, held)
		ls.block(s.Body, copyHeld(held))
		if s.Else != nil {
			ls.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Cond != nil {
			ls.scan(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			ls.stmt(s.Post, inner)
		}
		ls.block(s.Body, inner)
	case *ast.RangeStmt:
		ls.scan(s.X, held)
		ls.block(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		if s.Tag != nil {
			ls.scan(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cc.Body {
					ls.stmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cc.Body {
					ls.stmt(st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					ls.stmt(cc.Comm, inner)
				}
				for _, st := range cc.Body {
					ls.stmt(st, inner)
				}
			}
		}
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt, held)
	default:
		ls.scan(stmt, held)
	}
}

// acquire records one Lock/RLock: the direct acquisition, and an edge from
// every currently held lock.
func (ls *lockOrderScan) acquire(key string, site ast.Node, held map[string]bool) {
	ls.sum.acquires[key] = true
	for from := range held {
		ls.sum.edges = append(ls.sum.edges, lockOrderEdge{
			from: from, to: key, pkg: ls.node.Pkg, site: site,
		})
	}
}

// scan records in-module calls made while locks are held. Function literals
// are skipped — they run later, outside this acquisition context, and their
// own bodies are not separate call-graph nodes (their acquires already fold
// into the enclosing declaration's summary via scanLockOrder's linear walk —
// except that here the walk does not descend, keeping the held-set honest).
func (ls *lockOrderScan) scan(node ast.Node, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	snapshot := make([]string, 0, len(held))
	for k := range held {
		snapshot = append(snapshot, k)
	}
	sort.Strings(snapshot)
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, isLock, _ := ls.lockOp(x); isLock {
				return true
			}
			ls.sum.calls = append(ls.sum.calls, lockCall{held: snapshot, call: x, pkg: ls.node.Pkg})
		}
		return true
	})
}

// lockOp classifies a call as a sync.Mutex/RWMutex operation and derives the
// abstract lock key.
func (ls *lockOrderScan) lockOp(call *ast.CallExpr) (key string, isLock, locks bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	obj := calleeObject(ls.node.Pkg.Info, call)
	if objectPkgPath(obj) != "sync" {
		return "", false, false
	}
	switch obj.Name() {
	case "Lock", "RLock":
		return ls.lockKey(sel.X), true, true
	case "Unlock", "RUnlock":
		return ls.lockKey(sel.X), true, false
	}
	return "", false, false
}

// lockKey derives the abstract identity of a mutex from its receiver
// expression: struct-field locks key by owning type and field name, package
// level locks by package and variable name, everything else (locals,
// parameters) by enclosing function and expression text.
func (ls *lockOrderScan) lockKey(e ast.Expr) string {
	info := ls.node.Pkg.Info
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if tv, ok := info.Types[x.X]; ok {
			if named := recvNamed(tv.Type); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + x.Name
			}
		}
	}
	return ls.node.Key() + "." + types.ExprString(e)
}
