package txpool

import (
	"fmt"
	"sort"

	"toposhot/internal/types"
)

// EntrySnapshot is the serializable form of one live pool entry.
type EntrySnapshot struct {
	Tx      *types.Transaction
	Added   float64
	Seq     uint64
	Pending bool
}

// NonceSnapshot records one sender's chain nonce.
type NonceSnapshot struct {
	Addr  types.Address
	Nonce uint64
}

// Snapshot is a complete, restorable image of a pool's observable state.
//
// Entries hold the live transactions in admission (age-queue) order. The two
// heap layouts are preserved verbatim as index lists into Entries:
// priceHeap's comparator is not a total order (it prefers futures over
// pendings only at equal price), so rebuilding the heap by re-pushing could
// produce a different — still valid, but not byte-identical — eviction
// sequence. Copying the array layout reproduces the exact heap the original
// pool would have used. Dead age-queue entries (lazily skipped tombstones)
// are dropped: they have no observable effect.
type Snapshot struct {
	Entries     []EntrySnapshot
	PriceOrder  []int32 // price-heap array layout, indices into Entries
	FutureOrder []int32 // future-heap array layout, indices into Entries
	StateNonces []NonceSnapshot
	AdmitSeq    uint64
	Now         float64
	BaseFee     uint64
}

// Snapshot captures the pool's restorable state. The policy is not included
// — it is configuration, carried separately by the caller.
func (p *Pool) Snapshot() Snapshot {
	var s Snapshot
	index := make(map[*entry]int32, len(p.all))
	s.Entries = make([]EntrySnapshot, 0, len(p.all))
	for _, e := range p.ageQueue {
		if e.heapIdx < 0 {
			continue // tombstone: removed, awaiting lazy skip
		}
		index[e] = int32(len(s.Entries))
		s.Entries = append(s.Entries, EntrySnapshot{Tx: e.tx, Added: e.added, Seq: e.seq, Pending: e.pending})
	}
	s.PriceOrder = make([]int32, len(p.price))
	for i, e := range p.price {
		s.PriceOrder[i] = index[e]
	}
	s.FutureOrder = make([]int32, len(p.futures))
	for i, e := range p.futures {
		s.FutureOrder[i] = index[e]
	}
	s.StateNonces = make([]NonceSnapshot, 0, len(p.stateNonce))
	for addr, nonce := range p.stateNonce {
		s.StateNonces = append(s.StateNonces, NonceSnapshot{Addr: addr, Nonce: nonce})
	}
	sort.Slice(s.StateNonces, func(i, j int) bool {
		return string(s.StateNonces[i].Addr[:]) < string(s.StateNonces[j].Addr[:])
	})
	s.AdmitSeq = p.admitSeq
	s.Now = p.now
	s.BaseFee = p.baseFee
	return s
}

// RestorePool reconstructs a pool from a snapshot under the given policy.
// The restored pool is behaviorally byte-identical to the snapshotted one:
// same admission sequence numbers, same heap array layouts, same expiry
// order.
func RestorePool(policy Policy, s Snapshot) (*Pool, error) {
	p := New(policy)
	ents := make([]*entry, len(s.Entries))
	for i, es := range s.Entries {
		if es.Tx == nil {
			return nil, fmt.Errorf("txpool: snapshot entry %d has no transaction", i)
		}
		e := &entry{tx: es.Tx, added: es.Added, seq: es.Seq, pending: es.Pending, heapIdx: -1, futIdx: -1}
		ents[i] = e
		h := es.Tx.Hash()
		if _, dup := p.all[h]; dup {
			return nil, fmt.Errorf("txpool: duplicate transaction %v in snapshot", h)
		}
		p.all[h] = e
		m := p.bySender[es.Tx.From]
		if m == nil {
			m = make(map[uint64]*entry)
			p.bySender[es.Tx.From] = m
		}
		m[es.Tx.Nonce] = e
		p.ageQueue = append(p.ageQueue, e)
		if es.Pending {
			p.pendingCount++
			p.senderPending[es.Tx.From]++
		} else {
			p.futureCount++
			p.senderFuture[es.Tx.From]++
		}
	}
	if len(s.PriceOrder) != len(ents) {
		return nil, fmt.Errorf("txpool: price-heap layout covers %d of %d entries", len(s.PriceOrder), len(ents))
	}
	p.price = make(priceHeap, len(s.PriceOrder))
	for i, idx := range s.PriceOrder {
		if idx < 0 || int(idx) >= len(ents) || ents[idx].heapIdx != -1 {
			return nil, fmt.Errorf("txpool: invalid price-heap slot %d → %d", i, idx)
		}
		p.price[i] = ents[idx]
		ents[idx].heapIdx = i
	}
	p.futures = make(futureHeap, len(s.FutureOrder))
	for i, idx := range s.FutureOrder {
		if idx < 0 || int(idx) >= len(ents) || ents[idx].futIdx != -1 || ents[idx].pending {
			return nil, fmt.Errorf("txpool: invalid future-heap slot %d → %d", i, idx)
		}
		p.futures[i] = ents[idx]
		ents[idx].futIdx = i
	}
	if len(p.futures) != p.futureCount {
		return nil, fmt.Errorf("txpool: future heap holds %d of %d futures", len(p.futures), p.futureCount)
	}
	for _, ns := range s.StateNonces {
		p.stateNonce[ns.Addr] = ns.Nonce
	}
	p.admitSeq = s.AdmitSeq
	p.now = s.Now
	p.baseFee = s.BaseFee
	return p, nil
}
