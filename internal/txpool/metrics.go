package txpool

import "toposhot/internal/metrics"

// Metrics holds the pool's pre-resolved instruments. A nil *Metrics (the
// default) and nil instruments are both no-ops, so an un-instrumented pool
// pays one branch per Offer. One Metrics value may be shared by many pools
// (the simulator aggregates every node's mempool into network-wide totals).
type Metrics struct {
	AdmittedPending *metrics.Counter
	AdmittedFuture  *metrics.Counter
	Replaced        *metrics.Counter
	Promoted        *metrics.Counter

	RejectedKnown          *metrics.Counter
	RejectedUnderpriced    *metrics.Counter
	RejectedPoolFull       *metrics.Counter
	RejectedStaleNonce     *metrics.Counter
	RejectedOverAccountCap *metrics.Counter

	Evicted *metrics.Counter
	Expired *metrics.Counter
}

// NewMetrics resolves the pool instrument set against a registry under the
// "txpool." prefix. A nil registry yields a usable all-no-op Metrics.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		AdmittedPending:        r.Counter("txpool.admitted.pending"),
		AdmittedFuture:         r.Counter("txpool.admitted.future"),
		Replaced:               r.Counter("txpool.replaced"),
		Promoted:               r.Counter("txpool.promoted"),
		RejectedKnown:          r.Counter("txpool.rejected.known"),
		RejectedUnderpriced:    r.Counter("txpool.rejected.underpriced"),
		RejectedPoolFull:       r.Counter("txpool.rejected.pool_full"),
		RejectedStaleNonce:     r.Counter("txpool.rejected.stale_nonce"),
		RejectedOverAccountCap: r.Counter("txpool.rejected.over_account_cap"),
		Evicted:                r.Counter("txpool.evicted"),
		Expired:                r.Counter("txpool.expired"),
	}
}

// observeOffer tallies one Offer outcome.
func (m *Metrics) observeOffer(res Result) {
	if m == nil {
		return
	}
	switch res.Status {
	case StatusPending:
		m.AdmittedPending.Inc()
	case StatusFuture:
		m.AdmittedFuture.Inc()
	case StatusReplaced:
		m.Replaced.Inc()
	case StatusKnown:
		m.RejectedKnown.Inc()
	case StatusUnderpriced:
		m.RejectedUnderpriced.Inc()
	case StatusPoolFull:
		m.RejectedPoolFull.Inc()
	case StatusStaleNonce:
		m.RejectedStaleNonce.Inc()
	case StatusOverAccountCap:
		m.RejectedOverAccountCap.Inc()
	}
	m.Promoted.Add(int64(len(res.Promoted)))
	m.Evicted.Add(int64(len(res.Evicted)))
}

// observeExpired tallies expiry drops from SetTime.
func (m *Metrics) observeExpired() {
	if m == nil {
		return
	}
	m.Expired.Inc()
}
