package txpool

import (
	"sort"

	"toposhot/internal/types"
)

// EIP-1559 support (Appendix E of the paper). Under the fee-market upgrade a
// transaction carries a max fee (fee cap) and a priority fee (tip); the
// chain sets a per-block base fee. The appendix's observations, which this
// file implements:
//
//   - the mempool uses the MAX FEE for admission, replacement and eviction
//     decisions (a dynamic-fee transaction's GasPrice field here *is* its
//     fee cap — see types.Transaction.FeeCap);
//   - a pending transaction whose max fee falls below the base fee becomes
//     underpriced and is dropped;
//   - TopoShot therefore keeps working as long as the measurement
//     transactions' max fees stay above the base fee.

// SetBaseFee records the current base fee and drops buffered transactions
// whose fee caps fall below it — the "negative priority fee" rule of
// Appendix E. It returns the dropped transactions.
func (p *Pool) SetBaseFee(baseFee uint64) []*types.Transaction {
	p.baseFee = baseFee
	if baseFee == 0 {
		return nil
	}
	var drop []*entry
	for _, e := range p.all {
		if e.tx.FeeCap() < baseFee {
			drop = append(drop, e)
		}
	}
	// Drop in hash order: the removal sequence feeds DropObserver and the
	// returned slice, both of which must be identical across runs.
	sort.Slice(drop, func(i, j int) bool {
		hi, hj := drop[i].tx.Hash(), drop[j].tx.Hash()
		return string(hi[:]) < string(hj[:])
	})
	out := make([]*types.Transaction, 0, len(drop))
	for _, e := range drop {
		p.remove(e)
		p.repartition(e.tx.From)
		out = append(out, e.tx)
		if p.DropObserver != nil {
			p.DropObserver(e.tx, "base-fee-underpriced")
		}
	}
	return out
}

// BaseFee returns the base fee the pool last observed.
func (p *Pool) BaseFee() uint64 { return p.baseFee }
