package txpool

import (
	"testing"

	"toposhot/internal/types"
)

func dyn(from uint64, nonce, cap, tip uint64) *types.Transaction {
	return types.NewDynamicFeeTransaction(acct(from), acct(from+1_000_000), nonce, cap, tip, 0)
}

func TestSetBaseFeeDropsUnderpriced(t *testing.T) {
	p := New(small(100))
	cheap := dyn(1, 0, 100, 5)
	rich := dyn(2, 0, 500, 5)
	legacyCheap := tx(3, 0, 150)
	p.Offer(cheap)
	p.Offer(rich)
	p.Offer(legacyCheap)
	dropped := p.SetBaseFee(200)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	if p.Has(cheap.Hash()) || p.Has(legacyCheap.Hash()) {
		t.Fatal("underpriced txs still buffered")
	}
	if !p.Has(rich.Hash()) {
		t.Fatal("rich tx dropped")
	}
	if p.BaseFee() != 200 {
		t.Fatalf("base fee = %d", p.BaseFee())
	}
	if p.SetBaseFee(0) != nil {
		t.Fatal("zero base fee should drop nothing")
	}
}

func TestSetBaseFeeDemotesDependents(t *testing.T) {
	p := New(small(100))
	p.Offer(dyn(1, 0, 100, 1))
	p.Offer(dyn(1, 1, 500, 1))
	p.SetBaseFee(200) // nonce 0 dropped → nonce 1 must demote
	n1 := p.GetBySenderNonce(acct(1), 1)
	if n1 == nil {
		t.Fatal("nonce 1 dropped")
	}
	if p.IsPending(n1.Hash()) {
		t.Fatal("nonce 1 still pending after dependency dropped")
	}
}

func TestDynamicFeeReplacementUsesCap(t *testing.T) {
	p := New(small(100))
	p.Offer(dyn(1, 0, 1000, 2))
	// Appendix E: the mempool keys replacement on the MAX FEE.
	low := dyn(1, 0, 1099, 900)
	if res := p.Offer(low); res.Status != StatusUnderpriced {
		t.Fatalf("9.9%% cap bump accepted: %v", res.Status)
	}
	ok := dyn(1, 0, 1100, 2)
	if res := p.Offer(ok); res.Status != StatusReplaced {
		t.Fatalf("10%% cap bump rejected: %v", res.Status)
	}
}

func TestEffectiveTip(t *testing.T) {
	d := dyn(1, 0, 1000, 50)
	if got := d.EffectiveTip(900); got != 50 {
		t.Fatalf("tip-limited: %d", got)
	}
	if got := d.EffectiveTip(980); got != 20 {
		t.Fatalf("headroom-limited: %d", got)
	}
	if got := d.EffectiveTip(1200); got != 0 {
		t.Fatalf("under base fee: %d", got)
	}
	legacy := tx(1, 0, 1000)
	if got := legacy.EffectiveTip(900); got != 100 {
		t.Fatalf("legacy effective tip: %d", got)
	}
}
