package txpool

import (
	"reflect"
	"testing"

	"toposhot/internal/types"
)

// buildBusyPool drives a small-capacity pool through admissions,
// replacements, futures, evictions, and expiries so its internal heaps have
// non-trivial shape.
func buildBusyPool() *Pool {
	p := New(Geth.WithCapacity(48).WithExpiry(100))
	for i := 0; i < 40; i++ {
		from := types.AddressFromUint64(uint64(100 + i))
		p.SetTime(float64(i))
		p.Offer(types.NewTransaction(from, types.AddressFromUint64(1), 0, types.Gwei+uint64(i*7%13)*1e8, 1))
		if i%3 == 0 { // nonce-gapped future
			p.Offer(types.NewTransaction(from, types.AddressFromUint64(1), 2, types.Gwei+uint64(i%5)*1e8, 1))
		}
		if i%5 == 0 { // replacement with a sufficient bump
			p.Offer(types.NewTransaction(from, types.AddressFromUint64(2), 0, 2*types.Gwei+uint64(i)*1e8, 1))
		}
	}
	return p
}

// driveFurther applies an identical post-snapshot workload and collects
// every observable outcome.
func driveFurther(p *Pool) []string {
	var log []string
	for i := 0; i < 30; i++ {
		from := types.AddressFromUint64(uint64(500 + i%7))
		tx := types.NewTransaction(from, types.AddressFromUint64(3), uint64(i/7), types.Gwei/2+uint64(i)*3e8, 1)
		res := p.Offer(tx)
		log = append(log, res.Status.String())
		for _, ev := range res.Evicted {
			log = append(log, "evict:"+ev.Hash().String())
		}
		for _, pr := range res.Promoted {
			log = append(log, "promote:"+pr.Hash().String())
		}
		if i%6 == 5 {
			p.SetTime(p.now + 21)
		}
	}
	for _, tx := range p.Content() {
		log = append(log, "content:"+tx.Hash().String())
	}
	for _, tx := range p.Pending() {
		log = append(log, "pending:"+tx.Hash().String())
	}
	return log
}

// TestSnapshotRoundTrip pins the restore contract: a restored pool is
// behaviorally byte-identical to the original under any further workload —
// including eviction order, which depends on exact heap array layout.
func TestSnapshotRoundTrip(t *testing.T) {
	orig := buildBusyPool()
	snap := orig.Snapshot()
	restored, err := RestorePool(orig.Policy(), snap)
	if err != nil {
		t.Fatalf("RestorePool: %v", err)
	}

	if restored.Len() != orig.Len() ||
		restored.PendingCount() != orig.PendingCount() ||
		restored.FutureCount() != orig.FutureCount() {
		t.Fatalf("restored counts (%d,%d,%d) != original (%d,%d,%d)",
			restored.Len(), restored.PendingCount(), restored.FutureCount(),
			orig.Len(), orig.PendingCount(), orig.FutureCount())
	}

	a, b := driveFurther(orig), driveFurther(restored)
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("divergence at step %d: %q vs %q", i, a[i], b[i])
			}
		}
		t.Fatalf("restored pool diverged (lengths %d vs %d)", len(a), len(b))
	}
}

// TestSnapshotDropsTombstones verifies dead age-queue entries do not leak
// into the snapshot.
func TestSnapshotDropsTombstones(t *testing.T) {
	p := New(Geth.WithCapacity(16))
	var hashes []types.Hash
	for i := 0; i < 8; i++ {
		tx := types.NewTransaction(types.AddressFromUint64(uint64(i+1)), types.AddressFromUint64(1), 0, types.Gwei, 1)
		p.Offer(tx)
		hashes = append(hashes, tx.Hash())
	}
	p.Drop(hashes[0])
	p.Drop(hashes[3])
	snap := p.Snapshot()
	if len(snap.Entries) != 6 {
		t.Fatalf("snapshot holds %d entries, want 6 live", len(snap.Entries))
	}
	restored, err := RestorePool(p.Policy(), snap)
	if err != nil {
		t.Fatalf("RestorePool: %v", err)
	}
	if restored.Has(hashes[0]) || restored.Has(hashes[3]) {
		t.Fatal("dropped transactions resurrected by restore")
	}
	if restored.Len() != 6 {
		t.Fatalf("restored %d entries, want 6", restored.Len())
	}
}
