package txpool

import (
	"container/heap"
	"fmt"
	"sort"

	"toposhot/internal/types"
)

// Status is the outcome of offering a transaction to a pool. The node layer
// uses it to decide propagation: only transactions that became pending
// (StatusPending, StatusReplaced, plus any promotions returned alongside)
// are gossiped; futures are buffered silently (§2, "Transaction propagation").
type Status int

// Offer outcomes.
const (
	// StatusPending: admitted as an executable (pending) transaction.
	StatusPending Status = iota
	// StatusFuture: admitted, but queued as a future (nonce-gapped) transaction.
	StatusFuture
	// StatusReplaced: admitted by replacing a same-sender/same-nonce transaction.
	StatusReplaced
	// StatusKnown: duplicate of a transaction already in the pool.
	StatusKnown
	// StatusUnderpriced: rejected; a same-sender/nonce transaction exists and
	// the price bump is below the policy threshold R.
	StatusUnderpriced
	// StatusPoolFull: rejected; the pool is full and the transaction cannot
	// evict anything under the policy (price too low, P unmet, or U exceeded).
	StatusPoolFull
	// StatusStaleNonce: rejected; the nonce is below the sender's account nonce.
	StatusStaleNonce
	// StatusOverAccountCap: rejected future; the sender already has U futures.
	StatusOverAccountCap
)

// Admitted reports whether the offer left the transaction in the pool.
func (s Status) Admitted() bool {
	return s == StatusPending || s == StatusFuture || s == StatusReplaced
}

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusFuture:
		return "future"
	case StatusReplaced:
		return "replaced"
	case StatusKnown:
		return "known"
	case StatusUnderpriced:
		return "underpriced"
	case StatusPoolFull:
		return "pool-full"
	case StatusStaleNonce:
		return "stale-nonce"
	case StatusOverAccountCap:
		return "over-account-cap"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result describes everything an Offer did to the pool, so the node layer
// can propagate newly executable transactions and observability hooks can
// record replacements and evictions.
type Result struct {
	Status Status
	// Replaced is the transaction displaced by a same-sender/nonce
	// replacement, if Status == StatusReplaced.
	Replaced *types.Transaction
	// Evicted lists transactions dropped to make room for the offered one.
	Evicted []*types.Transaction
	// Promoted lists previously-future transactions that became pending as a
	// consequence of this admission (nonce gap closed). The offered
	// transaction itself is not repeated here.
	Promoted []*types.Transaction
}

type entry struct {
	tx      *types.Transaction
	added   float64 // pool time at admission, for expiry
	seq     uint64  // admission sequence, tie-break for equal-price eviction
	pending bool
	// heap bookkeeping for the price index; -1 when not in the heap.
	heapIdx int
	// futIdx is this entry's slot in the future-only price heap; -1 while
	// the entry is pending (or removed).
	futIdx int
}

// Pool is a single node's mempool. It is not safe for concurrent use; the
// simulator is single-threaded and the live TCP node wraps it in a mutex.
type Pool struct {
	policy Policy

	all      map[types.Hash]*entry
	bySender map[types.Address]map[uint64]*entry // sender → nonce → entry
	// senderPending/senderFuture tally each sender's pending and future
	// entries, so the per-account cap check and repartition's demotion
	// test are O(1) instead of rescanning the sender's entries — the scans
	// made admitting Z futures from one measurement account O(Z²).
	senderPending map[types.Address]int
	senderFuture  map[types.Address]int
	// stateNonce is the account nonce from chain state: the next expected
	// nonce per sender. Senders absent from the map have nonce 0.
	stateNonce map[types.Address]uint64

	price priceHeap // min-heap over gas price for eviction victims
	// futures is a second index over future entries only, so the full-pool
	// pending-admission path finds its eviction victim in O(log n) instead
	// of scanning the whole pool.
	futures futureHeap
	// admitSeq numbers admissions; equal-price eviction ties break toward
	// the oldest admission, a defined order the old linear scan lacked.
	admitSeq uint64

	// ageQueue holds entries in admission order for O(1) amortized expiry;
	// removed entries are skipped lazily (heapIdx == -1).
	ageQueue []*entry

	pendingCount int
	futureCount  int
	now          float64
	baseFee      uint64

	// DropObserver, when set, is invoked for every transaction that leaves
	// the pool involuntarily (eviction, expiry), with a reason tag.
	DropObserver func(tx *types.Transaction, reason string)

	// metrics, when set, tallies admissions, replacements, rejections per
	// reason, evictions and expiries. Nil (the default) costs one branch.
	metrics *Metrics
}

// New returns an empty pool with the given policy.
func New(policy Policy) *Pool {
	return &Pool{
		policy:        policy,
		all:           make(map[types.Hash]*entry),
		bySender:      make(map[types.Address]map[uint64]*entry),
		senderPending: make(map[types.Address]int),
		senderFuture:  make(map[types.Address]int),
		stateNonce:    make(map[types.Address]uint64),
	}
}

// Policy returns the pool's policy.
func (p *Pool) Policy() Policy { return p.policy }

// SetMetrics attaches an instrument set to the pool (nil detaches). Several
// pools may share one Metrics value; counts then aggregate.
func (p *Pool) SetMetrics(m *Metrics) { p.metrics = m }

// SetTime advances the pool clock (virtual seconds) and expires transactions
// older than the policy expiry. Admission order makes the age queue
// monotone, so expiry is O(expired) amortized.
func (p *Pool) SetTime(now float64) {
	p.now = now
	if p.policy.Expiry <= 0 {
		return
	}
	for len(p.ageQueue) > 0 {
		e := p.ageQueue[0]
		if e.heapIdx < 0 { // already removed; skip lazily
			p.ageQueue = p.ageQueue[1:]
			continue
		}
		if now-e.added <= p.policy.Expiry {
			break
		}
		p.ageQueue = p.ageQueue[1:]
		p.remove(e)
		p.repartition(e.tx.From)
		p.metrics.observeExpired()
		if p.DropObserver != nil {
			p.DropObserver(e.tx, "expired")
		}
	}
}

// Len returns the number of buffered transactions.
func (p *Pool) Len() int { return len(p.all) }

// PendingCount returns the number of executable transactions.
func (p *Pool) PendingCount() int { return p.pendingCount }

// FutureCount returns the number of nonce-gapped transactions.
func (p *Pool) FutureCount() int { return p.futureCount }

// Full reports whether the pool is at capacity.
func (p *Pool) Full() bool { return len(p.all) >= p.policy.Capacity }

// Has reports whether the pool holds the transaction with the given hash.
func (p *Pool) Has(h types.Hash) bool { _, ok := p.all[h]; return ok }

// Get returns the buffered transaction with the given hash, or nil.
func (p *Pool) Get(h types.Hash) *types.Transaction {
	if e, ok := p.all[h]; ok {
		return e.tx
	}
	return nil
}

// GetBySenderNonce returns the buffered transaction from sender with the
// given nonce, or nil.
func (p *Pool) GetBySenderNonce(sender types.Address, nonce uint64) *types.Transaction {
	if e, ok := p.bySender[sender][nonce]; ok {
		return e.tx
	}
	return nil
}

// IsPending reports whether the hash is buffered as a pending transaction.
func (p *Pool) IsPending(h types.Hash) bool {
	e, ok := p.all[h]
	return ok && e.pending
}

// StateNonce returns the chain nonce recorded for sender.
func (p *Pool) StateNonce(sender types.Address) uint64 { return p.stateNonce[sender] }

// SetStateNonce records sender's chain nonce. It re-evaluates the sender's
// buffered transactions: stale ones are dropped and newly executable ones
// promoted. It returns the promoted transactions.
func (p *Pool) SetStateNonce(sender types.Address, nonce uint64) []*types.Transaction {
	p.stateNonce[sender] = nonce
	// Drop stale.
	for n, e := range p.bySender[sender] {
		if n < nonce {
			p.remove(e)
		}
	}
	return p.repartition(sender)
}

// senderFutureCount counts sender's buffered future transactions.
func (p *Pool) senderFutureCount(sender types.Address) int {
	return p.senderFuture[sender]
}

// markPending flips an entry's pending flag, keeping the global and
// per-sender tallies in sync.
func (p *Pool) markPending(e *entry, pending bool) {
	if e.pending == pending {
		return
	}
	e.pending = pending
	if pending {
		p.pendingCount++
		p.futureCount--
		p.senderPending[e.tx.From]++
		if p.senderFuture[e.tx.From]--; p.senderFuture[e.tx.From] == 0 {
			delete(p.senderFuture, e.tx.From)
		}
	} else {
		p.pendingCount--
		p.futureCount++
		p.senderFuture[e.tx.From]++
		if p.senderPending[e.tx.From]--; p.senderPending[e.tx.From] == 0 {
			delete(p.senderPending, e.tx.From)
		}
	}
}

// isExecutable reports whether a transaction with the given sender and nonce
// would be pending: every nonce from the state nonce up to it is present.
func (p *Pool) isExecutable(sender types.Address, nonce uint64) bool {
	next := p.stateNonce[sender]
	if nonce < next {
		return false
	}
	m := p.bySender[sender]
	for n := next; n < nonce; n++ {
		if _, ok := m[n]; !ok {
			return false
		}
	}
	return true
}

// Offer submits a transaction to the pool and returns what happened. This is
// the single admission path; it implements, in order:
//
//  1. duplicate and stale-nonce filtering;
//  2. same-sender/nonce replacement under the R price-bump rule;
//  3. the per-account future cap U;
//  4. capacity-pressure eviction under the L/P rules, evicting the
//     lowest-priced transaction while the pool is over capacity;
//  5. pending/future classification and promotion of unblocked futures.
func (p *Pool) Offer(tx *types.Transaction) Result {
	res := p.offer(tx)
	p.metrics.observeOffer(res)
	return res
}

func (p *Pool) offer(tx *types.Transaction) Result {
	h := tx.Hash()
	if _, ok := p.all[h]; ok {
		return Result{Status: StatusKnown}
	}
	if tx.Nonce < p.stateNonce[tx.From] {
		return Result{Status: StatusStaleNonce}
	}

	// Replacement path: same sender and nonce as a buffered transaction.
	if old, ok := p.bySender[tx.From][tx.Nonce]; ok {
		if tx.GasPrice < p.policy.ReplaceThreshold(old.tx.GasPrice) {
			return Result{Status: StatusUnderpriced}
		}
		replaced := old.tx
		wasPending := old.pending
		p.remove(old)
		e := p.insert(tx, wasPending)
		_ = e
		return Result{Status: StatusReplaced, Replaced: replaced}
	}

	executable := p.isExecutable(tx.From, tx.Nonce)

	// Per-account future cap (U) applies to future admissions.
	if !executable && p.senderFutureCount(tx.From) >= p.policy.MaxFuturePerAccount {
		return Result{Status: StatusOverAccountCap}
	}

	// Capacity pressure: evict until there is room, or reject.
	var evicted []*types.Transaction
	for len(p.all) >= p.policy.Capacity {
		var victim *entry
		if executable {
			// Executable transactions are first-class: they displace the
			// cheapest queued future regardless of price (Geth truncates the
			// queue before touching pending slots), falling back to a
			// price-checked pending victim.
			victim = p.cheapestFuture()
			if victim == nil {
				victim = p.cheapest()
				if victim == nil || tx.GasPrice <= victim.tx.GasPrice {
					return Result{Status: StatusPoolFull}
				}
			}
		} else {
			victim = p.cheapest()
			if victim == nil {
				return Result{Status: StatusPoolFull}
			}
			// The incoming future must outbid the victim, and may evict a
			// pending transaction only while the pending population exceeds
			// P (Table 2's eviction conditions).
			if tx.GasPrice <= victim.tx.GasPrice {
				return Result{Status: StatusPoolFull}
			}
			if victim.pending && p.pendingCount <= p.policy.MinPendingForEviction {
				return Result{Status: StatusPoolFull}
			}
		}
		p.remove(victim)
		evicted = append(evicted, victim.tx)
		if p.DropObserver != nil {
			p.DropObserver(victim.tx, "evicted")
		}
	}

	p.insert(tx, executable)
	status := StatusFuture
	var promoted []*types.Transaction
	if executable {
		status = StatusPending
		promoted = p.repartition(tx.From)
		// repartition reports the offered tx too; exclude it from Promoted.
		filtered := promoted[:0]
		for _, ptx := range promoted {
			if ptx.Hash() != h {
				filtered = append(filtered, ptx)
			}
		}
		promoted = filtered
	}
	return Result{Status: status, Evicted: evicted, Promoted: promoted}
}

// insert adds an entry with the given pending flag.
func (p *Pool) insert(tx *types.Transaction, pending bool) *entry {
	p.admitSeq++
	e := &entry{tx: tx, added: p.now, seq: p.admitSeq, pending: pending, heapIdx: -1, futIdx: -1}
	p.all[tx.Hash()] = e
	m := p.bySender[tx.From]
	if m == nil {
		m = make(map[uint64]*entry)
		p.bySender[tx.From] = m
	}
	m[tx.Nonce] = e
	heap.Push(&p.price, e)
	p.ageQueue = append(p.ageQueue, e)
	if pending {
		p.pendingCount++
		p.senderPending[tx.From]++
	} else {
		p.futureCount++
		p.senderFuture[tx.From]++
		heap.Push(&p.futures, e)
	}
	return e
}

// remove deletes an entry from all indexes.
func (p *Pool) remove(e *entry) {
	delete(p.all, e.tx.Hash())
	m := p.bySender[e.tx.From]
	delete(m, e.tx.Nonce)
	if len(m) == 0 {
		delete(p.bySender, e.tx.From)
	}
	if e.heapIdx >= 0 {
		heap.Remove(&p.price, e.heapIdx)
	}
	if e.futIdx >= 0 {
		heap.Remove(&p.futures, e.futIdx)
	}
	if e.pending {
		p.pendingCount--
		if p.senderPending[e.tx.From]--; p.senderPending[e.tx.From] == 0 {
			delete(p.senderPending, e.tx.From)
		}
	} else {
		p.futureCount--
		if p.senderFuture[e.tx.From]--; p.senderFuture[e.tx.From] == 0 {
			delete(p.senderFuture, e.tx.From)
		}
	}
}

// cheapest returns the lowest-priced entry, or nil when the pool is empty.
func (p *Pool) cheapest() *entry {
	if len(p.price) == 0 {
		return nil
	}
	return p.price[0]
}

// cheapestFuture returns the lowest-priced future entry (oldest admission on
// price ties), or nil when no futures are buffered. The dedicated future heap
// makes the full-pool pending-admission path O(log n); it used to scan the
// whole pool.
func (p *Pool) cheapestFuture() *entry {
	if len(p.futures) == 0 {
		return nil
	}
	return p.futures[0]
}

// repartition re-derives the pending/future flags for one sender's
// transactions after an insertion or nonce change, returning transactions
// that transitioned future → pending (including a just-inserted one).
func (p *Pool) repartition(sender types.Address) []*types.Transaction {
	m := p.bySender[sender]
	if len(m) == 0 {
		return nil
	}
	var promoted []*types.Transaction
	next := p.stateNonce[sender]
	n := next
	for {
		e, ok := m[n]
		if !ok {
			break
		}
		if !e.pending {
			p.markPending(e, true)
			if e.futIdx >= 0 {
				heap.Remove(&p.futures, e.futIdx)
			}
			promoted = append(promoted, e.tx)
		}
		n++
	}
	// Demote anything beyond the gap that is marked pending (can happen
	// after a mid-sequence removal). The walk above left every nonce in
	// [next, n) pending, so when the sender's pending tally equals that
	// run's length no stale pending entry can exist and the scan is
	// skipped — without the check every future admission pays O(entries).
	if p.senderPending[sender] != int(n-next) {
		for nonce, e := range m {
			if nonce >= n && e.pending {
				p.markPending(e, false)
				heap.Push(&p.futures, e)
			}
		}
	}
	return promoted
}

// RemoveConfirmed removes transactions included in a block and advances the
// senders' state nonces, returning newly promoted transactions.
func (p *Pool) RemoveConfirmed(txs []*types.Transaction) []*types.Transaction {
	touched := make(map[types.Address]uint64)
	for _, tx := range txs {
		if e, ok := p.all[tx.Hash()]; ok {
			p.remove(e)
		}
		if next := tx.Nonce + 1; next > touched[tx.From] {
			touched[tx.From] = next
		}
	}
	// Advance senders in sorted order so the promotion sequence (and any
	// observer callbacks it fires) is identical across runs.
	senders := make([]types.Address, 0, len(touched))
	for sender := range touched {
		senders = append(senders, sender)
	}
	sort.Slice(senders, func(i, j int) bool {
		return string(senders[i][:]) < string(senders[j][:])
	})
	var promoted []*types.Transaction
	for _, sender := range senders {
		if next := touched[sender]; next > p.stateNonce[sender] {
			promoted = append(promoted, p.SetStateNonce(sender, next)...)
		}
	}
	return promoted
}

// Drop removes a specific transaction (used by tests and by the chain layer
// for invalidated transactions). It reports whether the hash was present.
func (p *Pool) Drop(h types.Hash) bool {
	e, ok := p.all[h]
	if !ok {
		return false
	}
	p.remove(e)
	p.repartition(e.tx.From)
	return true
}

// Pending returns the executable transactions ordered by descending gas
// price (miner order). Ties break on sender/nonce for determinism.
func (p *Pool) Pending() []*types.Transaction {
	out := make([]*types.Transaction, 0, p.pendingCount)
	for _, e := range p.all {
		if e.pending {
			out = append(out, e.tx)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GasPrice != out[j].GasPrice {
			return out[i].GasPrice > out[j].GasPrice
		}
		if out[i].From != out[j].From {
			return string(out[i].From[:]) < string(out[j].From[:])
		}
		return out[i].Nonce < out[j].Nonce
	})
	return out
}

// Content returns every buffered transaction, ordered by hash so the
// txpool_content RPC view is stable across runs.
func (p *Pool) Content() []*types.Transaction {
	out := make([]*types.Transaction, 0, len(p.all))
	for _, e := range p.all {
		out = append(out, e.tx)
	}
	sort.Slice(out, func(i, j int) bool {
		hi, hj := out[i].Hash(), out[j].Hash()
		return string(hi[:]) < string(hj[:])
	})
	return out
}

// PendingPrices returns the gas prices of pending transactions in ascending
// order; the measurement node feeds this to the median estimator for Y
// (§5.2.1), which must not see map iteration order.
func (p *Pool) PendingPrices() []uint64 {
	out := make([]uint64, 0, p.pendingCount)
	for _, e := range p.all {
		if e.pending {
			out = append(out, e.tx.GasPrice)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// priceHeap is a min-heap of entries keyed by gas price, with index
// maintenance for O(log n) removal.
type priceHeap []*entry

func (h priceHeap) Len() int { return len(h) }
func (h priceHeap) Less(i, j int) bool {
	if h[i].tx.GasPrice != h[j].tx.GasPrice {
		return h[i].tx.GasPrice < h[j].tx.GasPrice
	}
	// Prefer evicting futures before pendings at equal price.
	return !h[i].pending && h[j].pending
}
func (h priceHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *priceHeap) Push(x interface{}) {
	e := x.(*entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *priceHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	e.heapIdx = -1
	*h = old[:n-1]
	return e
}

// futureHeap is a min-heap over future entries only, keyed by gas price with
// admission order breaking ties, so the eviction sequence is fully defined.
type futureHeap []*entry

func (h futureHeap) Len() int { return len(h) }
func (h futureHeap) Less(i, j int) bool {
	if h[i].tx.GasPrice != h[j].tx.GasPrice {
		return h[i].tx.GasPrice < h[j].tx.GasPrice
	}
	return h[i].seq < h[j].seq
}
func (h futureHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].futIdx = i
	h[j].futIdx = j
}
func (h *futureHeap) Push(x interface{}) {
	e := x.(*entry)
	e.futIdx = len(*h)
	*h = append(*h, e)
}
func (h *futureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	e.futIdx = -1
	*h = old[:n-1]
	return e
}
