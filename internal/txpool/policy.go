// Package txpool implements the Ethereum mempool semantics TopoShot
// leverages: the pending/future transaction split, price-bump replacement,
// and capacity-pressure eviction, parameterized by the four policy knobs the
// paper profiles in Table 3 (R, U, P, L).
package txpool

import "math"

// Policy captures a client's mempool behaviour in the paper's notation:
//
//	R — minimal relative gas-price bump for replacement (BumpMil/1000);
//	U — max future transactions admitted per sender account;
//	P — minimal pending population required before future-driven eviction;
//	L — mempool capacity in transactions.
type Policy struct {
	// Name of the client implementing this policy.
	Name string
	// ClientVersion is the web3_clientVersion-style identification string.
	ClientVersion string
	// BumpMil is the replacement price bump R in thousandths:
	// 100 means a 10% bump, 125 means 12.5%, 0 means same-price replacement.
	BumpMil uint64
	// MaxFuturePerAccount is U. Use Unlimited for no cap (Besu).
	MaxFuturePerAccount int
	// MinPendingForEviction is P: a future transaction may evict only while
	// more than this many pending transactions are buffered.
	MinPendingForEviction int
	// Capacity is L, the total transaction capacity of the pool.
	Capacity int
	// Expiry is the unconfirmed-transaction lifetime in seconds (Appendix C's
	// e; 3 hours for Geth). Zero disables expiry.
	Expiry float64
}

// Unlimited marks an uncapped per-account future allowance.
const Unlimited = math.MaxInt32

// DefaultExpiry is Geth's default unconfirmed-transaction lifetime (3 h).
const DefaultExpiry = 3 * 3600.0

// Client policy presets matching Table 3 of the paper. Deployment shares on
// the 2021 mainnet: Geth 83.24%, Parity 14.57%, Nethermind 1.53%,
// Besu 0.52%, Aleth 0%.
var (
	// Geth is the dominant Go client: R=10%, U=4096, P=0, L=5120.
	Geth = Policy{
		Name: "geth", ClientVersion: "Geth/v1.9.25-stable/linux-amd64/go1.15.6",
		BumpMil: 100, MaxFuturePerAccount: 4096, MinPendingForEviction: 0,
		Capacity: 5120, Expiry: DefaultExpiry,
	}
	// Parity (OpenEthereum): R=12.5%, U=81, P=2000, L=8192.
	Parity = Policy{
		Name: "parity", ClientVersion: "OpenEthereum//v3.1.0-stable/x86_64-linux-gnu/rustc1.50.0",
		BumpMil: 125, MaxFuturePerAccount: 81, MinPendingForEviction: 2000,
		Capacity: 8192, Expiry: DefaultExpiry,
	}
	// Nethermind: R=0% (flawed: same-price replacement), U=17, P=0, L=2048.
	Nethermind = Policy{
		Name: "nethermind", ClientVersion: "Nethermind/v1.10.17/linux-x64/dotnet5.0.4",
		BumpMil: 0, MaxFuturePerAccount: 17, MinPendingForEviction: 0,
		Capacity: 2048, Expiry: DefaultExpiry,
	}
	// Besu: R=10%, U=∞, P=0, L=4096.
	Besu = Policy{
		Name: "besu", ClientVersion: "besu/v21.1.2/linux-x86_64/oracle_openjdk-java-11",
		BumpMil: 100, MaxFuturePerAccount: Unlimited, MinPendingForEviction: 0,
		Capacity: 4096, Expiry: DefaultExpiry,
	}
	// Aleth: R=0% (flawed), U=1, P=0, L=2048.
	Aleth = Policy{
		Name: "aleth", ClientVersion: "aleth/1.8.0/linux/gnu7.5.0",
		BumpMil: 0, MaxFuturePerAccount: 1, MinPendingForEviction: 0,
		Capacity: 2048, Expiry: DefaultExpiry,
	}
)

// AllClients lists the Table-3 presets in deployment order.
var AllClients = []Policy{Geth, Parity, Nethermind, Besu, Aleth}

// ClientByName returns the preset with the given Name and true, or a zero
// Policy and false.
func ClientByName(name string) (Policy, bool) {
	for _, p := range AllClients {
		if p.Name == name {
			return p, true
		}
	}
	return Policy{}, false
}

// Measurable reports whether TopoShot can measure a node running this
// policy. A zero replacement bump (R = 0) breaks the isolation property —
// the medium-priced txC would be replaceable by the equally-priced txA —
// so Nethermind and Aleth are not measurable (§5.1).
func (p Policy) Measurable() bool { return p.BumpMil > 0 }

// ReplaceThreshold returns the minimal gas price that replaces an existing
// transaction priced oldPrice, i.e. ceil(oldPrice × (1 + R)).
func (p Policy) ReplaceThreshold(oldPrice uint64) uint64 {
	num := oldPrice * (1000 + p.BumpMil)
	th := num / 1000
	if num%1000 != 0 {
		th++
	}
	return th
}

// WithCapacity returns a copy of the policy with capacity l — used to model
// nodes running non-default --txpool.globalslots settings (§5.2.3).
func (p Policy) WithCapacity(l int) Policy {
	p.Capacity = l
	return p
}

// WithBumpMil returns a copy with a custom replacement threshold — used to
// model nodes with non-default price-bump settings (§6.1's second culprit).
func (p Policy) WithBumpMil(bump uint64) Policy {
	p.BumpMil = bump
	return p
}

// WithExpiry returns a copy with a custom unconfirmed-transaction lifetime.
// Scaled-pool campaigns scale the lifetime alongside capacity.
func (p Policy) WithExpiry(seconds float64) Policy {
	p.Expiry = seconds
	return p
}
