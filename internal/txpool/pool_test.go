package txpool

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"toposhot/internal/types"
)

func acct(n uint64) types.Address { return types.AddressFromUint64(n) }

func tx(from uint64, nonce, price uint64) *types.Transaction {
	return types.NewTransaction(acct(from), acct(from+1_000_000), nonce, price, 0)
}

func small(capacity int) Policy {
	return Geth.WithCapacity(capacity)
}

func TestPendingVsFutureClassification(t *testing.T) {
	p := New(small(100))
	if res := p.Offer(tx(1, 0, 100)); res.Status != StatusPending {
		t.Fatalf("nonce 0 status = %v", res.Status)
	}
	if res := p.Offer(tx(1, 2, 100)); res.Status != StatusFuture {
		t.Fatalf("gapped nonce status = %v", res.Status)
	}
	// Closing the gap promotes the future.
	res := p.Offer(tx(1, 1, 100))
	if res.Status != StatusPending {
		t.Fatalf("gap filler status = %v", res.Status)
	}
	if len(res.Promoted) != 1 || res.Promoted[0].Nonce != 2 {
		t.Fatalf("promotion missing: %v", res.Promoted)
	}
	if p.PendingCount() != 3 || p.FutureCount() != 0 {
		t.Fatalf("counts: pending=%d future=%d", p.PendingCount(), p.FutureCount())
	}
}

func TestDuplicateAndStale(t *testing.T) {
	p := New(small(100))
	a := tx(1, 0, 100)
	p.Offer(a)
	if res := p.Offer(a); res.Status != StatusKnown {
		t.Fatalf("duplicate = %v", res.Status)
	}
	p.SetStateNonce(acct(1), 5)
	if res := p.Offer(tx(1, 3, 100)); res.Status != StatusStaleNonce {
		t.Fatalf("stale = %v", res.Status)
	}
}

func TestReplacementThreshold(t *testing.T) {
	p := New(small(100))
	old := tx(1, 0, 1000)
	p.Offer(old)
	// 9.9% bump: rejected under Geth's 10%.
	low := types.NewTransaction(acct(1), acct(2), 0, 1099, 0)
	if res := p.Offer(low); res.Status != StatusUnderpriced {
		t.Fatalf("underpriced bump = %v", res.Status)
	}
	// Exactly 10%: accepted.
	ok := types.NewTransaction(acct(1), acct(2), 0, 1100, 0)
	res := p.Offer(ok)
	if res.Status != StatusReplaced {
		t.Fatalf("replacement = %v", res.Status)
	}
	if res.Replaced == nil || res.Replaced.Hash() != old.Hash() {
		t.Fatal("replaced tx not reported")
	}
	if p.Has(old.Hash()) {
		t.Fatal("old tx still buffered")
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestReplacementOfFutureStaysFuture(t *testing.T) {
	p := New(small(100))
	p.Offer(tx(1, 5, 1000))
	rep := types.NewTransaction(acct(1), acct(2), 5, 2000, 0)
	if res := p.Offer(rep); res.Status != StatusReplaced {
		t.Fatalf("future replacement = %v", res.Status)
	}
	if p.IsPending(rep.Hash()) {
		t.Fatal("replaced future became pending")
	}
}

func TestParityBumpRatio(t *testing.T) {
	p := New(Parity.WithCapacity(100))
	p.Offer(tx(1, 0, 1000))
	if res := p.Offer(types.NewTransaction(acct(1), acct(2), 0, 1124, 0)); res.Status != StatusUnderpriced {
		t.Fatalf("11.24%% bump accepted by Parity: %v", res.Status)
	}
	if res := p.Offer(types.NewTransaction(acct(1), acct(2), 0, 1125, 0)); res.Status != StatusReplaced {
		t.Fatalf("12.5%% bump rejected by Parity: %v", res.Status)
	}
}

func TestZeroBumpClients(t *testing.T) {
	p := New(Aleth.WithCapacity(100))
	p.Offer(tx(1, 0, 1000))
	// Same price, different tx: replacement allowed under R=0.
	if res := p.Offer(types.NewTransaction(acct(1), acct(2), 0, 1000, 1)); res.Status != StatusReplaced {
		t.Fatalf("same-price replacement under R=0: %v", res.Status)
	}
}

func TestFutureEvictionOfPending(t *testing.T) {
	p := New(small(4))
	// Fill with four pendings at prices 10..40.
	for i := uint64(0); i < 4; i++ {
		if !p.Offer(tx(10+i, 0, 10*(i+1))).Status.Admitted() {
			t.Fatal("fill failed")
		}
	}
	// Incoming future at 100 evicts the cheapest pending (price 10).
	res := p.Offer(tx(99, 3, 100))
	if res.Status != StatusFuture {
		t.Fatalf("future admission = %v", res.Status)
	}
	if len(res.Evicted) != 1 || res.Evicted[0].GasPrice != 10 {
		t.Fatalf("evicted = %v", res.Evicted)
	}
	// Incoming future priced below the floor is rejected.
	if res := p.Offer(tx(98, 3, 15)); res.Status != StatusPoolFull {
		t.Fatalf("cheap future = %v", res.Status)
	}
}

func TestEvictionRespectsP(t *testing.T) {
	pol := small(4)
	pol.MinPendingForEviction = 10 // pending population always ≤ P
	p := New(pol)
	for i := uint64(0); i < 4; i++ {
		p.Offer(tx(10+i, 0, 10*(i+1)))
	}
	if res := p.Offer(tx(99, 3, 100)); res.Status != StatusPoolFull {
		t.Fatalf("eviction under P = %v", res.Status)
	}
}

func TestPendingDisplacesFutureWhenFull(t *testing.T) {
	p := New(small(3))
	p.Offer(tx(1, 0, 50))
	p.Offer(tx(2, 1, 500)) // future at high price
	p.Offer(tx(3, 0, 60))
	// Pool full. A cheap *pending* arrival displaces the future regardless
	// of price (pending transactions are first-class).
	res := p.Offer(tx(4, 0, 5))
	if res.Status != StatusPending {
		t.Fatalf("pending admission = %v", res.Status)
	}
	if len(res.Evicted) != 1 || res.Evicted[0].Nonce != 1 {
		t.Fatalf("evicted = %v", res.Evicted)
	}
}

func TestAccountFutureCapU(t *testing.T) {
	pol := small(100)
	pol.MaxFuturePerAccount = 3
	p := New(pol)
	for i := uint64(0); i < 3; i++ {
		if !p.Offer(tx(1, i+2, 100)).Status.Admitted() {
			t.Fatal("future admission failed")
		}
	}
	if res := p.Offer(tx(1, 9, 100)); res.Status != StatusOverAccountCap {
		t.Fatalf("over-cap = %v", res.Status)
	}
	// Other accounts unaffected.
	if res := p.Offer(tx(2, 2, 100)); res.Status != StatusFuture {
		t.Fatalf("other account = %v", res.Status)
	}
}

// TestEvictionSequencePinned pins the full-pool eviction order when pending
// admissions displace futures: strictly ascending gas price, with equal-price
// ties broken toward the oldest admission. The sequence must not drift when
// the future index implementation changes.
func TestEvictionSequencePinned(t *testing.T) {
	p := New(small(6))
	type drop struct {
		from  types.Address
		price uint64
	}
	var dropped []drop
	p.DropObserver = func(dtx *types.Transaction, reason string) {
		if reason == "evicted" {
			dropped = append(dropped, drop{dtx.From, dtx.GasPrice})
		}
	}
	// One pending plus five gapped futures fill the pool. Prices include a
	// three-way tie at 100 admitted in sender order 10, 12, 14.
	p.Offer(tx(1, 0, 500))
	p.Offer(tx(10, 1, 100))
	p.Offer(tx(11, 1, 300))
	p.Offer(tx(12, 1, 100))
	p.Offer(tx(13, 1, 200))
	p.Offer(tx(14, 1, 100))
	if p.Len() != 6 || p.FutureCount() != 5 {
		t.Fatalf("setup: len=%d futures=%d", p.Len(), p.FutureCount())
	}
	// Five executable admissions evict the five futures one by one.
	for i := 0; i < 5; i++ {
		res := p.Offer(tx(uint64(20+i), 0, 1000))
		if res.Status != StatusPending || len(res.Evicted) != 1 {
			t.Fatalf("admission %d: status=%v evicted=%d", i, res.Status, len(res.Evicted))
		}
	}
	want := []drop{
		{acct(10), 100}, {acct(12), 100}, {acct(14), 100},
		{acct(13), 200}, {acct(11), 300},
	}
	if len(dropped) != len(want) {
		t.Fatalf("evictions = %d, want %d", len(dropped), len(want))
	}
	for i := range want {
		if dropped[i] != want[i] {
			t.Fatalf("eviction %d = %+v, want %+v (order drifted)", i, dropped[i], want[i])
		}
	}
	// With no futures left, the next pending admission must fall back to the
	// price-checked pending victim path.
	res := p.Offer(tx(30, 0, 2000))
	if res.Status != StatusPending || len(res.Evicted) != 1 || res.Evicted[0].GasPrice != 500 {
		t.Fatalf("pending fallback: %v evicted=%v", res.Status, res.Evicted)
	}
}

func TestRemoveConfirmedAdvancesNonces(t *testing.T) {
	p := New(small(100))
	t0 := tx(1, 0, 100)
	t1 := tx(1, 1, 100)
	t2 := tx(1, 2, 100)
	p.Offer(t0)
	p.Offer(t2) // future
	promoted := p.RemoveConfirmed([]*types.Transaction{t0, t1})
	if p.Has(t0.Hash()) {
		t.Fatal("confirmed tx still present")
	}
	if p.StateNonce(acct(1)) != 2 {
		t.Fatalf("state nonce = %d", p.StateNonce(acct(1)))
	}
	if len(promoted) != 1 || promoted[0].Hash() != t2.Hash() {
		t.Fatalf("promotion after confirm: %v", promoted)
	}
	if !p.IsPending(t2.Hash()) {
		t.Fatal("t2 not pending after promotion")
	}
}

func TestExpiry(t *testing.T) {
	pol := small(100)
	pol.Expiry = 10
	p := New(pol)
	a := tx(1, 0, 100)
	p.Offer(a)
	p.SetTime(5)
	b := tx(2, 0, 100)
	p.Offer(b)
	p.SetTime(11) // a (age 11) expires; b (age 6) stays
	if p.Has(a.Hash()) {
		t.Fatal("expired tx still present")
	}
	if !p.Has(b.Hash()) {
		t.Fatal("fresh tx dropped")
	}
}

func TestExpiryDemotesDependents(t *testing.T) {
	pol := small(100)
	pol.Expiry = 10
	p := New(pol)
	p.Offer(tx(1, 0, 100))
	p.SetTime(5)
	later := tx(1, 1, 100)
	p.Offer(later)
	if !p.IsPending(later.Hash()) {
		t.Fatal("nonce 1 should be pending")
	}
	p.SetTime(11) // nonce 0 expires → nonce 1 must demote to future
	if !p.Has(later.Hash()) {
		t.Fatal("nonce 1 dropped")
	}
	if p.IsPending(later.Hash()) {
		t.Fatal("nonce 1 still pending after dependency expired")
	}
}

func TestPendingOrderedByPrice(t *testing.T) {
	p := New(small(100))
	p.Offer(tx(1, 0, 10))
	p.Offer(tx(2, 0, 30))
	p.Offer(tx(3, 0, 20))
	got := p.Pending()
	if len(got) != 3 || got[0].GasPrice != 30 || got[2].GasPrice != 10 {
		t.Fatalf("pending order wrong: %v", got)
	}
}

func TestDropRemoves(t *testing.T) {
	p := New(small(10))
	a := tx(1, 0, 10)
	p.Offer(a)
	if !p.Drop(a.Hash()) {
		t.Fatal("drop failed")
	}
	if p.Drop(a.Hash()) {
		t.Fatal("double drop succeeded")
	}
	if p.Len() != 0 {
		t.Fatal("pool not empty")
	}
}

// invariantCheck verifies internal consistency of the pool counters.
func invariantCheck(t *testing.T, p *Pool) {
	t.Helper()
	if p.PendingCount()+p.FutureCount() != p.Len() {
		t.Fatalf("count invariant broken: %d + %d != %d",
			p.PendingCount(), p.FutureCount(), p.Len())
	}
	if p.Len() > p.Policy().Capacity {
		t.Fatalf("capacity exceeded: %d > %d", p.Len(), p.Policy().Capacity)
	}
	// The future heap must index exactly the future entries, and its top
	// must agree with a reference scan under the (price, admission) order.
	if len(p.futures) != p.FutureCount() {
		t.Fatalf("future heap holds %d entries, future count is %d",
			len(p.futures), p.FutureCount())
	}
	var ref *entry
	for _, e := range p.all {
		if e.pending {
			if e.futIdx >= 0 {
				t.Fatalf("pending %v indexed in future heap", e.tx.Hash())
			}
			continue
		}
		if e.futIdx < 0 || p.futures[e.futIdx] != e {
			t.Fatalf("future %v mis-indexed (futIdx=%d)", e.tx.Hash(), e.futIdx)
		}
		if ref == nil || e.tx.GasPrice < ref.tx.GasPrice ||
			(e.tx.GasPrice == ref.tx.GasPrice && e.seq < ref.seq) {
			ref = e
		}
	}
	if got := p.cheapestFuture(); got != ref {
		t.Fatalf("cheapestFuture disagrees with reference scan: got %v want %v", got, ref)
	}
	// The per-sender tallies must agree with a reference recount, with no
	// stale zero-valued keys left behind.
	refPending := map[types.Address]int{}
	refFuture := map[types.Address]int{}
	for _, e := range p.all {
		if e.pending {
			refPending[e.tx.From]++
		} else {
			refFuture[e.tx.From]++
		}
	}
	if !reflect.DeepEqual(p.senderPending, refPending) {
		t.Fatalf("senderPending tally drifted: have %v want %v", p.senderPending, refPending)
	}
	if !reflect.DeepEqual(p.senderFuture, refFuture) {
		t.Fatalf("senderFuture tally drifted: have %v want %v", p.senderFuture, refFuture)
	}
}

// TestRandomizedInvariants hammers the pool with random offers and checks
// the structural invariants throughout — the core property test.
func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pol := small(64)
	pol.MaxFuturePerAccount = 8
	p := New(pol)
	for i := 0; i < 20000; i++ {
		from := uint64(rng.Intn(24))
		nonce := uint64(rng.Intn(12))
		price := uint64(1 + rng.Intn(1000))
		res := p.Offer(tx(from, nonce, price))
		_ = res
		if i%500 == 0 {
			invariantCheck(t, p)
			p.SetTime(float64(i) / 100)
		}
		if rng.Intn(50) == 0 {
			p.RemoveConfirmed(p.Pending()[:min(len(p.Pending()), 3)])
			invariantCheck(t, p)
		}
	}
	invariantCheck(t, p)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPendingContiguity: every pending transaction's nonce range from the
// state nonce must be fully present — the defining property of "pending".
func TestPendingContiguity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := New(small(128))
	for i := 0; i < 5000; i++ {
		from := uint64(rng.Intn(8))
		p.Offer(tx(from, uint64(rng.Intn(10)), uint64(1+rng.Intn(100))))
	}
	for _, ptx := range p.Pending() {
		for n := p.StateNonce(ptx.From); n < ptx.Nonce; n++ {
			if p.GetBySenderNonce(ptx.From, n) == nil {
				t.Fatalf("pending %v#%d has gap at nonce %d", ptx.From, ptx.Nonce, n)
			}
		}
	}
}

func TestReplaceThresholdQuick(t *testing.T) {
	f := func(price uint32) bool {
		if price == 0 {
			return true
		}
		th := Geth.ReplaceThreshold(uint64(price))
		// Threshold must be the minimal integer at least 10% above
		// (integer arithmetic: th·10 ≥ price·11 > (th−1)·10).
		return th*10 >= uint64(price)*11 && (th-1)*10 < uint64(price)*11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClientByName(t *testing.T) {
	for _, c := range AllClients {
		got, ok := ClientByName(c.Name)
		if !ok || got.Capacity != c.Capacity {
			t.Errorf("ClientByName(%q) failed", c.Name)
		}
	}
	if _, ok := ClientByName("nope"); ok {
		t.Error("unknown client resolved")
	}
}

func TestMeasurable(t *testing.T) {
	if !Geth.Measurable() || !Parity.Measurable() || !Besu.Measurable() {
		t.Error("non-zero-R clients should be measurable")
	}
	if Nethermind.Measurable() || Aleth.Measurable() {
		t.Error("zero-R clients should not be measurable")
	}
}
