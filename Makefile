GO ?= go

.PHONY: build vet lint lint-sarif test race check bench bench-smoke bench-compare fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project-specific analyzers (see internal/lint and DESIGN.md
# §6/§11): determinism, lock discipline, wire-error hygiene, big.Int aliasing,
# metrics/trace nil-safety, plus the interprocedural lock-order, goroutine-leak,
# and hot-path-allocation rules. Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/toposhotlint ./...

# lint-sarif is the CI form of the same run: machine-readable SARIF 2.1.0 to
# lint.sarif (uploaded as an artifact) alongside the plain findings.
lint-sarif:
	$(GO) run ./cmd/toposhotlint -sarif lint.sarif ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: build, vet, lint, and the race-enabled test suite.
check: build vet lint race

# BENCH_PKGS covers the paper-scale benchmarks (root) plus the engine and
# gossip microbenchmarks the hot-path work is tuned against.
BENCH_PKGS = . ./internal/sim ./internal/ethsim
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' -timeout 0 $(BENCH_PKGS)

# bench-smoke is the quarter-scale (-short) single-iteration pass CI runs in
# a non-blocking job. The -json event stream lands in BENCH_<id>.json so runs
# can be diffed across revisions; BENCH_ID defaults to the git short hash.
# -timeout 0: the full pass can exceed go test's 10-minute default, and a
# killed run truncates the JSON stream mid-benchmark.
BENCH_ID ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)
bench-smoke:
	$(GO) test -short -bench . -benchtime 1x -run '^$$' -timeout 0 -json $(BENCH_PKGS) | tee BENCH_$(BENCH_ID).json

# bench-compare diffs two bench-smoke event streams. With OLD/NEW unset it
# picks the two newest BENCH_*.json here (older = baseline).
bench-compare:
	$(GO) run ./cmd/benchcompare $(OLD) $(NEW)

# fuzz gives the protocol decoders a short native-fuzz shake (CI runs the
# same targets in a non-blocking job).
fuzz:
	$(GO) test -fuzz=FuzzRLPDecode -fuzztime=30s ./internal/rlp/
	$(GO) test -fuzz=FuzzFrameParse -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzEventQueue -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzTraceJSONL -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzDynamicGraph -fuzztime=30s ./internal/graph/
