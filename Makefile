GO ?= go

.PHONY: build vet test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: build, vet, and the full race-enabled test suite.
check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
