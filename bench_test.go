package toposhot

// The repository-level benchmark harness: one benchmark per table and
// figure of the paper's evaluation (§6 and the appendices). Each benchmark
// regenerates its artifact and reports the headline quantities as benchmark
// metrics, so `go test -bench=. -benchmem` reproduces the full evaluation.
//
// Whole-testnet censuses are expensive; they run once and are shared across
// the benchmarks that analyze the same testnet (Fig 6 + Tables 4/5 etc.).
// By default the censuses run at half the paper's node counts (Ropsten 294,
// Rinkeby 223, Goerli 512) to keep the whole suite under ~20 minutes; set
// TOPOSHOT_FULL=1 for the paper-scale 588/446/1025 run, or -short for a
// quarter-scale smoke pass.

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"toposhot/internal/experiments"
	"toposhot/internal/graph"
	"toposhot/internal/runner"
	"toposhot/internal/txpool"
)

const benchSeed = 42

// TestMain sizes the experiment runner's worker pool for the whole suite.
// `go test -parallel N` doubles as the knob (its default is GOMAXPROCS,
// which is also the runner's default); TOPOSHOT_PARALLEL overrides it when
// the test-framework flag needs to stay independent. Parallelism changes
// wall-clock only: every experiment is pinned byte-identical to its serial
// run by the equivalence tests in internal/experiments.
func TestMain(m *testing.M) {
	flag.Parse()
	n := runtime.GOMAXPROCS(0)
	if f := flag.Lookup("test.parallel"); f != nil {
		if v, err := strconv.Atoi(f.Value.String()); err == nil && v > 0 {
			n = v
		}
	}
	if env := os.Getenv("TOPOSHOT_PARALLEL"); env != "" {
		if v, err := strconv.Atoi(env); err == nil && v > 0 {
			n = v
		}
	}
	runner.SetParallelism(n)
	os.Exit(m.Run())
}

// benchVerbose mirrors experiment output to stderr when TOPOSHOT_PRINT=1.
func benchPrint(b *testing.B, s string) {
	b.Helper()
	if os.Getenv("TOPOSHOT_PRINT") != "" {
		fmt.Fprintln(os.Stderr, s)
	}
}

func BenchmarkTable3ClientProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		if len(rows) != 5 {
			b.Fatalf("expected 5 client profiles, got %d", len(rows))
		}
		if i == 0 {
			benchPrint(b, experiments.FormatTable3(rows))
			b.ReportMetric(rows[0].R*100, "geth-R-%")
			b.ReportMetric(float64(rows[0].L), "geth-L")
		}
	}
}

func BenchmarkFig4aRecallVsFutures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4a(benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatFig4a(rows))
			b.ReportMetric(100*rows[0].Recall, "recall@minZ-%")
			b.ReportMetric(100*rows[len(rows)-1].Recall, "recall@maxZ-%")
		}
	}
}

func BenchmarkFig4bParallelGroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4b(benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatFig4b(rows))
			var minPrec, lastRecall float64 = 1, 1
			for _, r := range rows {
				if r.Precision < minPrec {
					minPrec = r.Precision
				}
				lastRecall = r.Recall
			}
			b.ReportMetric(100*minPrec, "min-precision-%")
			b.ReportMetric(100*lastRecall, "recall@p99-%")
		}
	}
}

func BenchmarkFig5ParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatFig5(rows))
			for _, r := range rows {
				if r.GroupSize == 30 {
					b.ReportMetric(r.Speedup, "speedup@K30-x")
				}
			}
		}
	}
}

// benchCensusConfig resolves a named campaign at the suite's scale.
func benchCensusConfig(name string) experiments.CensusConfig {
	var cfg experiments.CensusConfig
	switch name {
	case "rinkeby":
		cfg = experiments.RinkebyCensus(benchSeed)
	case "goerli":
		cfg = experiments.GoerliCensus(benchSeed)
	default:
		cfg = experiments.RopstenCensus(benchSeed)
	}
	switch {
	case testing.Short():
		cfg.Grow = cfg.Grow.WithN(cfg.Grow.N / 4)
	case os.Getenv("TOPOSHOT_FULL") == "":
		cfg.Grow = cfg.Grow.WithN(cfg.Grow.N / 2)
	}
	return cfg
}

// censusPrewarm launches all three testnet campaigns on the first census
// request. Each census is one serial engine, but the three are independent,
// so warming them concurrently costs the wall-clock of the slowest instead
// of the sum; the singleflight cache in experiments shares each run across
// every benchmark that analyzes the same testnet.
var censusPrewarm sync.Once

func benchCensus(b *testing.B, name string) *experiments.Census {
	b.Helper()
	censusPrewarm.Do(func() {
		experiments.PrewarmCensuses(
			benchCensusConfig("ropsten"),
			benchCensusConfig("rinkeby"),
			benchCensusConfig("goerli"),
		)
	})
	c, err := experiments.CachedCensus(benchCensusConfig(name))
	if err != nil {
		b.Fatalf("census %s: %v", name, err)
	}
	return c
}

func BenchmarkFig6RopstenDegrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCensus(b, "ropsten")
		if i == 0 {
			benchPrint(b, experiments.FormatDegreeDistribution(c.Measured, 90))
			b.ReportMetric(c.Measured.AverageDegree(), "avg-degree")
			b.ReportMetric(100*c.Score.Recall(), "recall-%")
			b.ReportMetric(100*c.Score.Precision(), "precision-%")
		}
	}
}

func BenchmarkTable4RopstenProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCensus(b, "ropsten")
		t := experiments.PropertyTable("ropsten", c, 3, benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatGraphTable(t))
			b.ReportMetric(t.Measured.Modularity, "modularity")
			b.ReportMetric(t.Baselines.ER.Modularity, "ER-modularity")
		}
	}
}

func BenchmarkTable5RopstenCommunities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCensus(b, "ropsten")
		rows := experiments.CommunityTable(c)
		if i == 0 {
			benchPrint(b, experiments.FormatCommunityTable("Ropsten", rows))
			b.ReportMetric(float64(len(rows)), "communities")
		}
	}
}

func BenchmarkTable6MainnetCritical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table6(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			benchPrint(b, experiments.FormatTable6(r))
			agree := 0.0
			if r.GroundTruthAgree {
				agree = 1
			}
			ni := 0.0
			if r.NonInterferenceOK {
				ni = 1
			}
			b.ReportMetric(agree, "truth-agreement")
			b.ReportMetric(ni, "non-interference")
		}
	}
}

func BenchmarkTable7CostSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cs []*experiments.Census
		for _, n := range []string{"ropsten", "rinkeby", "goerli"} {
			cs = append(cs, benchCensus(b, n))
		}
		rows := experiments.Table7(cs, nil)
		if i == 0 {
			benchPrint(b, experiments.FormatTable7(rows))
			b.ReportMetric(rows[0].Cost, "ropsten-ETH")
			b.ReportMetric(rows[0].Duration, "ropsten-hours")
		}
	}
}

func BenchmarkFig7LocalMempoolSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatFig7(rows))
			// The theorem cell-exactness: every cell matches L−pending ≤ Z.
			exact := 1.0
			for _, r := range rows {
				want := r.MempoolSize-r.Pending <= 5120
				if (r.Recall == 1) != want {
					exact = 0
				}
			}
			b.ReportMetric(exact, "cells-exact")
		}
	}
}

func BenchmarkTable8LocalParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table8(benchSeed, 10)
		if i == 0 {
			benchPrint(b, experiments.FormatTable8(rows))
			perfect := 1.0
			for _, r := range rows {
				if r.Recall != 1 || r.Precision != 1 {
					perfect = 0
				}
			}
			b.ReportMetric(perfect, "all-100%")
		}
	}
}

func BenchmarkFig8to10DegreeDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rk := benchCensus(b, "rinkeby")
		gl := benchCensus(b, "goerli")
		if i == 0 {
			benchPrint(b, experiments.FormatDegreeDistribution(rk.Measured, 150))
			benchPrint(b, experiments.FormatDegreeDistribution(gl.Measured, 100))
			b.ReportMetric(rk.Measured.AverageDegree(), "rinkeby-avg-degree")
			b.ReportMetric(gl.Measured.AverageDegree(), "goerli-avg-degree")
		}
	}
}

func BenchmarkTable9RinkebyProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCensus(b, "rinkeby")
		t := experiments.PropertyTable("rinkeby", c, 3, benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatGraphTable(t))
			b.ReportMetric(t.Measured.Modularity, "modularity")
		}
	}
}

func BenchmarkTable10GoerliProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCensus(b, "goerli")
		t := experiments.PropertyTable("goerli", c, 3, benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatGraphTable(t))
			b.ReportMetric(t.Measured.Modularity, "modularity")
		}
	}
}

func BenchmarkAppCNonInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AppC(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			benchPrint(b, experiments.FormatAppC(r))
			ok := 0.0
			if r.V1V2OK && !r.Twin.Interfered() {
				ok = 1
			}
			b.ReportMetric(ok, "non-interference")
			b.ReportMetric(float64(r.Blocks), "blocks-compared")
		}
	}
}

func BenchmarkAppATxProbeBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AppA(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			benchPrint(b, experiments.FormatAppA(r))
			b.ReportMetric(float64(r.Report.TxProbe.FalsePositives), "txprobe-FPs")
			b.ReportMetric(float64(r.Report.TopoShot.FalsePositives), "toposhot-FPs")
		}
	}
}

func BenchmarkW2InactiveEdgeBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.W2Crawl(benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatW2(r))
			b.ReportMetric(100*r.Report.PrecisionAsActive, "precision-as-active-%")
		}
	}
}

func BenchmarkAblationDesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablations(benchSeed)
		if i == 0 {
			benchPrint(b, experiments.FormatAblations(rows))
			b.ReportMetric(float64(len(rows)), "ablations")
		}
	}
}

func BenchmarkAppETopoShotUnderEIP1559(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AppE(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			benchPrint(b, experiments.FormatAppE(r))
			b.ReportMetric(100*r.Score.Precision(), "precision-%")
			b.ReportMetric(100*r.Score.Recall(), "recall-%")
			b.ReportMetric(float64(r.BaseFeeEnd), "final-base-fee-wei")
		}
	}
}

func BenchmarkFloodZeroRExploit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rows []experiments.FloodResult
		for _, name := range []string{"geth", "nethermind", "aleth"} {
			pol, _ := txpool.ClientByName(name)
			rows = append(rows, experiments.FloodExploit(pol, benchSeed))
		}
		if i == 0 {
			benchPrint(b, experiments.FormatFlood(rows))
			b.ReportMetric(float64(rows[0].Replacements), "geth-accepted")
			b.ReportMetric(float64(rows[1].Replacements), "nethermind-accepted")
		}
	}
}

func BenchmarkEclipseRiskAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchCensus(b, "ropsten")
		r := graph.AnalyzeEclipseRisk(c.Measured.LargestComponent())
		if i == 0 {
			b.ReportMetric(float64(r.VulnerableAtOrBelow[3]), "nodes-deg≤3")
			b.ReportMetric(float64(r.ArticulationPoints), "articulation-points")
			b.ReportMetric(float64(r.Bridges), "bridges")
		}
	}
}

// benchTrackingConfig sizes the churning-goerli incremental-tracking
// campaign: the seeding census is the expensive part, so the node counts sit
// below the census suite's (tracking re-censuses nothing — that is the
// point).
func benchTrackingConfig() experiments.TrackingConfig {
	cfg := experiments.GoerliTracking(benchSeed)
	switch {
	case testing.Short():
		cfg.Census.Grow = cfg.Census.Grow.WithN(48)
	case os.Getenv("TOPOSHOT_FULL") == "":
		cfg.Census.Grow = cfg.Census.Grow.WithN(96)
	default:
		cfg.Census.Grow = cfg.Census.Grow.WithN(192)
	}
	return cfg
}

// BenchmarkIncrementalTracking follows a churning goerli-shaped network with
// budgeted delta campaigns and reports the cost of staying current versus
// re-running the full census every tick. The ≥5× cost-reduction and ≤2
// percentage-point recall-loss floors are the feature's acceptance bars; the
// benchmark fails outright if a regression sinks either.
func BenchmarkIncrementalTracking(b *testing.B) {
	cfg := benchTrackingConfig()
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunTracking(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			benchPrint(b, experiments.FormatTracking(tr))
			costX, loss := tr.CostReductionX(), tr.RecallLoss()
			if costX < 5 {
				b.Fatalf("delta campaigns only %.1fx cheaper than census-per-tick (floor 5x)", costX)
			}
			if loss > 0.02 {
				b.Fatalf("tracking recall loss %.4f exceeds the 0.02 floor (census %.4f, mean %.4f)",
					loss, tr.CensusScore.Recall(), tr.MeanRecall)
			}
			b.ReportMetric(costX, "cost-reduction-x")
			b.ReportMetric(tr.VirtualReductionX(), "virtual-cost-reduction-x")
			b.ReportMetric(100*loss, "recall-loss-pp")
			b.ReportMetric(100*tr.MeanRecall, "recall-%")
			b.ReportMetric(100*tr.FinalScore.Precision(), "precision-%")
			b.ReportMetric(float64(tr.ChurnEvents), "churn-events")
		}
	}
}

// benchScaleConfig sizes the region-sharded mainnet census for the suite's
// scale: the full 50k-node MainnetConfig under TOPOSHOT_FULL=1, a 1/32
// population (same region granularity) by default, and 1/64 for -short.
func benchScaleConfig() experiments.ScaleCensusConfig {
	cfg := experiments.MainnetScaleCensus(benchSeed)
	switch {
	case testing.Short():
		cfg.Grow = cfg.Grow.WithN(cfg.Grow.N / 64)
		cfg.Regions = 8
	case os.Getenv("TOPOSHOT_FULL") == "":
		cfg.Grow = cfg.Grow.WithN(cfg.Grow.N / 32)
		cfg.Regions = 12
	}
	return cfg
}

// BenchmarkCensusScale runs the region-sharded census at increasing runner
// widths. Regions are independent engines, so wall-clock scales near-
// linearly with min(width, cores, regions) while every reported quantity
// stays identical across widths. speedup-x is measured wall-clock vs the
// width-1 sub-benchmark (bounded by the host's core count — flat on a
// single-core CI runner); fleet-speedup-x is the host-independent figure,
// total virtual measurement hours over the critical path, i.e. the speedup
// a sufficiently wide fleet attains. cmd/benchcompare diffs both.
func BenchmarkCensusScale(b *testing.B) {
	cfg := benchScaleConfig()
	saved := runner.Parallelism()
	defer runner.SetParallelism(saved)
	var serialSecs float64
	for _, width := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", width), func(b *testing.B) {
			runner.SetParallelism(width)
			for i := 0; i < b.N; i++ {
				start := time.Now()
				sc, err := experiments.RunScaleCensus(cfg)
				secs := time.Since(start).Seconds()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if width == 1 {
						serialSecs = secs
					}
					benchPrint(b, experiments.FormatScaleCensus(sc))
					if sc.TP == 0 {
						b.Fatal("sharded census detected nothing")
					}
					if serialSecs > 0 {
						b.ReportMetric(serialSecs/secs, "speedup-x")
					}
					if sc.MaxDurationHours > 0 {
						b.ReportMetric(sc.SumDurationHours/sc.MaxDurationHours, "fleet-speedup-x")
					}
					b.ReportMetric(100*sc.Precision, "precision-%")
					b.ReportMetric(100*sc.RecallCovered, "recall-covered-%")
					b.ReportMetric(100*float64(sc.CoveredEdges)/float64(sc.Truth.NumEdges()), "pair-coverage-%")
				}
			}
		})
	}
}
